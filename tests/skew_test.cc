// Skew-aware partitioning (docs/SKEW.md): the heavy-hitter detector
// (src/stats/heavy_hitters), the heavy/residual reducer assignment
// (src/sched/skew_assigner), the Hilbert-join skew routing, and the
// differential guarantee that skew handling never changes a join's result
// at any thread count.

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/core/executor.h"
#include "src/core/planner.h"
#include "src/cost/calibration.h"
#include "src/exec/hilbert_join.h"
#include "src/mapreduce/job_runner.h"
#include "src/runtime/parallel_job_runner.h"
#include "src/runtime/thread_pool.h"
#include "src/sched/skew_assigner.h"
#include "src/stats/heavy_hitters.h"
#include "src/workload/mobile.h"

namespace mrtheta {
namespace {

// ---- FrequencySketch ----

TEST(FrequencySketchTest, ExactBelowCapacity) {
  FrequencySketch sketch(16);
  for (int i = 0; i < 10; ++i) {
    for (int rep = 0; rep <= i; ++rep) sketch.Add(static_cast<uint64_t>(i));
  }
  const auto entries = sketch.Entries();
  ASSERT_EQ(entries.size(), 10u);
  EXPECT_EQ(entries[0].key, 9u);
  EXPECT_EQ(entries[0].count, 10);
  EXPECT_EQ(entries[0].error, 0);
  EXPECT_EQ(sketch.total(), 55);
}

TEST(FrequencySketchTest, KeepsHeavyKeysUnderEviction) {
  // A heavy key mixed into a long tail of distinct keys must survive
  // eviction pressure with a usable count.
  FrequencySketch sketch(32);
  Rng rng(7);
  int64_t heavy_count = 0;
  for (int i = 0; i < 20000; ++i) {
    if (rng.Bernoulli(0.2)) {
      sketch.Add(42);
      ++heavy_count;
    } else {
      sketch.Add(1000 + rng.Uniform(100000));
    }
  }
  const auto entries = sketch.Entries();
  ASSERT_FALSE(entries.empty());
  EXPECT_EQ(entries[0].key, 42u);
  // Space-Saving overestimates by at most the inherited error.
  EXPECT_GE(entries[0].count, heavy_count);
  EXPECT_LE(entries[0].count - entries[0].error, heavy_count);
  EXPECT_LE(entries[0].count, heavy_count + sketch.total() / 32);
}

// ---- DetectHeavyHitters ----

RelationPtr ZipfColumn(int64_t rows, int64_t domain, double exponent,
                       uint64_t seed) {
  auto rel = std::make_shared<Relation>(
      "t", Schema({{"k", ValueType::kInt64}}));
  Rng rng(seed);
  for (int64_t i = 0; i < rows; ++i) {
    rel->AppendIntRow({static_cast<int64_t>(
        rng.Zipf(static_cast<uint64_t>(domain), exponent))});
  }
  return rel;
}

std::map<int64_t, double> ExactFrequencies(const Relation& rel, int column) {
  std::map<int64_t, double> freq;
  for (int64_t r = 0; r < rel.num_rows(); ++r) freq[rel.GetInt(r, column)]++;
  for (auto& [k, f] : freq) f /= static_cast<double>(rel.num_rows());
  return freq;
}

TEST(HeavyHitterTest, ExactOnFullScan) {
  // Sample covers the whole relation -> frequencies are exact.
  const RelationPtr rel = ZipfColumn(3000, 500, 1.2, 11);
  const auto exact = ExactFrequencies(*rel, 0);
  HeavyHitterOptions options;
  options.sample_size = rel->num_rows();
  const auto hitters = DetectHeavyHitters(*rel, 0, options);
  ASSERT_FALSE(hitters.empty());
  for (const HeavyHitter& hh : hitters) {
    EXPECT_NEAR(hh.frequency, exact.at(hh.value.AsInt()), 1e-12);
  }
  // Descending, and the top value really is the most frequent one.
  for (size_t i = 1; i < hitters.size(); ++i) {
    EXPECT_GE(hitters[i - 1].frequency, hitters[i].frequency);
  }
  const auto top = std::max_element(
      exact.begin(), exact.end(),
      [](const auto& a, const auto& b) { return a.second < b.second; });
  EXPECT_EQ(hitters[0].value.AsInt(), top->first);
}

TEST(HeavyHitterTest, SampledTracksExactOnZipfColumn) {
  const RelationPtr rel = ZipfColumn(40000, 2000, 1.2, 12);
  const auto exact = ExactFrequencies(*rel, 0);
  HeavyHitterOptions options;
  options.sample_size = 2000;  // 5% sample
  const auto hitters = DetectHeavyHitters(*rel, 0, options);
  ASSERT_GE(hitters.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    const auto it = exact.find(hitters[i].value.AsInt());
    ASSERT_NE(it, exact.end());
    EXPECT_NEAR(hitters[i].frequency, it->second, 0.03)
        << "hitter " << i << " value " << hitters[i].value.AsInt();
  }
}

TEST(HeavyHitterTest, UniformColumnHasNoHeavyHitters) {
  auto rel = std::make_shared<Relation>(
      "t", Schema({{"k", ValueType::kInt64}}));
  for (int64_t i = 0; i < 20000; ++i) rel->AppendIntRow({i});
  HeavyHitterOptions options;
  options.min_frequency = 0.005;
  EXPECT_TRUE(DetectHeavyHitters(*rel, 0, options).empty());
}

// ---- PlanSkewAssignment ----

SkewCandidate Candidate(uint64_t hash, std::vector<double> axis_bytes,
                        double skew_dim_bytes) {
  SkewCandidate c;
  c.key_hash = hash;
  c.axis_bytes = std::move(axis_bytes);
  c.skew_dim_bytes = skew_dim_bytes;
  return c;
}

TEST(SkewAssignerTest, BalancedInputProducesNoGroups) {
  // Every candidate is at (or below) the mean per-task volume.
  std::vector<SkewCandidate> candidates;
  for (uint64_t v = 0; v < 8; ++v) {
    candidates.push_back(Candidate(v, {100.0, 100.0}, 200.0));
  }
  const SkewAssignment a = PlanSkewAssignment(candidates, 64000.0, 32);
  EXPECT_FALSE(a.enabled());
  EXPECT_EQ(a.residual_tasks, 32);
  EXPECT_EQ(a.heavy_tasks, 0);
}

TEST(SkewAssignerTest, SplitsDominantValueAcrossGrid) {
  // One value holds 20% of a 2-input join's volume: mean task bytes at
  // budget 32 is 1250, so 8000 skew-dim bytes is way past threshold.
  const SkewAssignment a = PlanSkewAssignment(
      {Candidate(7, {4000.0, 4000.0}, 8000.0)}, 40000.0, 32);
  ASSERT_TRUE(a.enabled());
  ASSERT_EQ(a.groups.size(), 1u);
  const HeavyGroup& g = a.groups[0];
  EXPECT_EQ(g.key_hash, 7u);
  EXPECT_GT(g.num_tasks, 1);
  EXPECT_EQ(g.num_tasks, g.shares[0] * g.shares[1]);
  EXPECT_EQ(a.residual_tasks + a.heavy_tasks, 32);
  EXPECT_EQ(g.first_task, a.residual_tasks);
  // The grid brings the group's per-task bytes toward the residual mean.
  EXPECT_LT(g.est_task_bytes, 8000.0 / 2);
}

TEST(SkewAssignerTest, HeavierValuesGetMoreTasks) {
  const SkewAssignment a = PlanSkewAssignment(
      {Candidate(1, {6000.0, 6000.0}, 12000.0),
       Candidate(2, {1500.0, 1500.0}, 3000.0)},
      50000.0, 32);
  ASSERT_EQ(a.groups.size(), 2u);
  EXPECT_EQ(a.groups[0].key_hash, 1u);  // descending skew bytes
  EXPECT_GT(a.groups[0].num_tasks, a.groups[1].num_tasks);
  // Groups are laid out contiguously after the residual segments.
  EXPECT_EQ(a.groups[1].first_task,
            a.groups[0].first_task + a.groups[0].num_tasks);
}

TEST(SkewAssignerTest, RespectsHeavyBudgetCap) {
  std::vector<SkewCandidate> candidates;
  for (uint64_t v = 0; v < 20; ++v) {
    candidates.push_back(Candidate(v, {5000.0, 5000.0}, 10000.0));
  }
  SkewAssignerOptions options;
  options.max_heavy_task_frac = 0.5;
  const SkewAssignment a =
      PlanSkewAssignment(candidates, 100000.0, 24, options);
  EXPECT_LE(a.heavy_tasks, 12);
  EXPECT_GE(a.residual_tasks, 12);
  EXPECT_LE(static_cast<int>(a.groups.size()), 12);
}

TEST(SkewAssignerTest, TinyBudgetDisablesSkewHandling) {
  const SkewAssignment a = PlanSkewAssignment(
      {Candidate(7, {4000.0, 4000.0}, 8000.0)}, 40000.0, 2);
  EXPECT_FALSE(a.enabled());
  EXPECT_EQ(a.residual_tasks, 2);
}

TEST(ReduceBalanceTest, RatioOfMaxToMean) {
  const std::vector<int64_t> bytes = {100, 100, 100, 500};
  const ReduceBalance b = ComputeReduceBalance(bytes);
  EXPECT_DOUBLE_EQ(b.max_bytes, 500.0);
  EXPECT_DOUBLE_EQ(b.mean_bytes, 200.0);
  EXPECT_DOUBLE_EQ(b.ratio, 2.5);
  EXPECT_DOUBLE_EQ(ComputeReduceBalance({}).ratio, 1.0);
}

// ---- Hilbert-join skew routing: differential + balance ----

// A mobile-style "calls at the same station" pair join over Zipf-skewed
// station codes: the fused hash dimension concentrates the top station on
// one slice, which is exactly the overload skew handling must dissolve.
MultiwayJoinJobSpec StationPairSpec(int64_t rows, double station_skew,
                                    int num_reduce_tasks,
                                    SkewHandling skew_handling) {
  MobileDataOptions options;
  options.physical_rows = rows;
  options.station_skew = station_skew;
  MultiwayJoinJobSpec spec;
  spec.name = "station-pair";
  spec.base_relations = {GenerateMobileCallsInstance(options, 0),
                         GenerateMobileCallsInstance(options, 1)};
  spec.inputs = {JoinSide::ForBase(spec.base_relations[0], 0),
                 JoinSide::ForBase(spec.base_relations[1], 1)};
  // t1.bsc = t2.bsc AND t1.bt <= t2.bt   (schema: id, d, bt, l, bsc)
  spec.conditions = {JoinCondition{{0, 4}, ThetaOp::kEq, {1, 4}, 0.0, 0},
                     JoinCondition{{0, 2}, ThetaOp::kLe, {1, 2}, 0.0, 1}};
  spec.num_reduce_tasks = num_reduce_tasks;
  spec.skew_handling = skew_handling;
  return spec;
}

// Output rows as sorted tuples (the reducer decomposition changes row
// order between skew on and off; the multiset must not change).
std::vector<std::vector<int64_t>> SortedRows(const Relation& rel) {
  std::vector<std::vector<int64_t>> rows;
  rows.reserve(static_cast<size_t>(rel.num_rows()));
  for (int64_t r = 0; r < rel.num_rows(); ++r) {
    std::vector<int64_t> row;
    for (int c = 0; c < rel.schema().num_columns(); ++c) {
      row.push_back(rel.GetInt(r, c));
    }
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

TEST(HilbertSkewTest, SkewRoutingPreservesResultsAndRebalances) {
  HilbertJoinPlanInfo info_off, info_on;
  const auto spec_off =
      BuildHilbertJoinJob(StationPairSpec(4000, 1.2, 32, SkewHandling::kOff),
                          &info_off);
  const auto spec_on =
      BuildHilbertJoinJob(StationPairSpec(4000, 1.2, 32, SkewHandling::kForce),
                          &info_on);
  ASSERT_TRUE(spec_off.ok()) << spec_off.status().ToString();
  ASSERT_TRUE(spec_on.ok()) << spec_on.status().ToString();
  EXPECT_FALSE(info_off.skew.enabled());
  ASSERT_TRUE(info_on.skew.enabled());
  EXPECT_GE(info_on.skew_dim, 0);
  EXPECT_EQ(info_on.skew.residual_tasks + info_on.skew.heavy_tasks,
            spec_on->num_reduce_tasks);

  const auto off = RunJobPhysically(*spec_off);
  const auto on = RunJobPhysically(*spec_on);
  ASSERT_TRUE(off.ok());
  ASSERT_TRUE(on.ok());
  EXPECT_EQ(SortedRows(*off->output), SortedRows(*on->output));
  EXPECT_GT(on->output->num_rows(), 0);

  const ReduceBalance balance_off =
      ComputeReduceBalance(off->metrics.reduce_input_bytes_logical);
  const ReduceBalance balance_on =
      ComputeReduceBalance(on->metrics.reduce_input_bytes_logical);
  // The heavy station overloads its slice's segment without skew handling;
  // the per-value grids pull the max back toward the mean.
  EXPECT_GT(balance_off.ratio, 2.0);
  EXPECT_LT(balance_on.ratio, balance_off.ratio / 2);
}

TEST(HilbertSkewTest, UniformDataIsUntouchedBySkewHandling) {
  // No heavy hitters -> kForce must degenerate to the exact kOff job,
  // byte-identical row order included.
  const auto spec_off =
      BuildHilbertJoinJob(StationPairSpec(2000, 0.0, 16, SkewHandling::kOff));
  const auto spec_on = BuildHilbertJoinJob(
      StationPairSpec(2000, 0.0, 16, SkewHandling::kForce));
  ASSERT_TRUE(spec_off.ok());
  ASSERT_TRUE(spec_on.ok());
  EXPECT_EQ(spec_off->num_reduce_tasks, spec_on->num_reduce_tasks);
  const auto off = RunJobPhysically(*spec_off);
  const auto on = RunJobPhysically(*spec_on);
  ASSERT_TRUE(off.ok());
  ASSERT_TRUE(on.ok());
  ASSERT_EQ(off->output->num_rows(), on->output->num_rows());
  for (int64_t r = 0; r < off->output->num_rows(); ++r) {
    for (int c = 0; c < off->output->schema().num_columns(); ++c) {
      ASSERT_EQ(off->output->GetInt(r, c), on->output->GetInt(r, c));
    }
  }
}

TEST(HilbertSkewTest, ParallelRunnerMatchesSequentialWithSkewOn) {
  // The PR 2 determinism contract extends to heavy-grid jobs: identical
  // rows, row order and metrics at every thread count.
  const auto spec =
      BuildHilbertJoinJob(StationPairSpec(3000, 1.2, 24, SkewHandling::kForce));
  ASSERT_TRUE(spec.ok());
  const auto ref = RunJobPhysically(*spec);
  ASSERT_TRUE(ref.ok());
  for (int threads : {2, 4}) {
    ThreadPool pool(threads);
    const auto got = RunJobParallel(*spec, pool);
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(got->output->num_rows(), ref->output->num_rows());
    for (int64_t r = 0; r < ref->output->num_rows(); ++r) {
      for (int c = 0; c < ref->output->schema().num_columns(); ++c) {
        ASSERT_EQ(got->output->GetInt(r, c), ref->output->GetInt(r, c))
            << "threads=" << threads;
      }
    }
    EXPECT_EQ(got->metrics.reduce_input_bytes_logical,
              ref->metrics.reduce_input_bytes_logical);
    EXPECT_EQ(got->metrics.map_output_bytes_logical,
              ref->metrics.map_output_bytes_logical);
  }
}

// ---- Executor-level differential: skew-enabled plans vs disabled ----

class SkewExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cluster_ = std::make_unique<SimCluster>(ClusterConfig{});
    const auto calib = CalibrateCostModel(*cluster_);
    ASSERT_TRUE(calib.ok());
    params_ = calib->params;
  }

  std::unique_ptr<SimCluster> cluster_;
  CostModelParams params_;
};

TEST_F(SkewExecutorTest, SkewedMobilePlanIsFlaggedAndResultInvariant) {
  MobileDataOptions options;
  options.physical_rows = 1200;
  // At this represented scale the planner picks the single Hilbert MRJ
  // over the cascade (the paper's preferred shape for Q1).
  options.logical_bytes = int64_t{2} << 30;
  options.station_skew = 1.2;
  const auto query = BuildMobileQuery(1, options);
  ASSERT_TRUE(query.ok());
  Planner planner(cluster_.get(), params_);
  const auto plan = planner.Plan(*query);
  ASSERT_TRUE(plan.ok());
  // The Zipf(1.2) station column must trip the planner's skew flag on at
  // least one Hilbert join of the plan.
  bool flagged = false;
  for (const PlanJob& job : plan->jobs) {
    flagged |= job.kind == PlanJobKind::kHilbertJoin && job.skew_handling;
  }
  EXPECT_TRUE(flagged);

  ExecutorOptions off;
  off.skew_handling = SkewHandling::kOff;
  Executor reference(cluster_.get(), off);
  const auto ref = reference.Execute(*query, *plan);
  ASSERT_TRUE(ref.ok()) << ref.status().ToString();

  for (int threads : {1, 2, 4}) {
    ExecutorOptions opts;
    opts.skew_handling = SkewHandling::kAuto;
    opts.num_threads = threads;
    Executor executor(cluster_.get(), opts);
    const auto got = executor.Execute(*query, *plan);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(SortedRows(*ref->result_ids), SortedRows(*got->result_ids))
        << "threads=" << threads;
  }
}

}  // namespace
}  // namespace mrtheta
