// Unit and property tests for the d-dimensional Hilbert curve and the
// segment-coverage machinery (the paper's perfect partition function).

#include <cstdlib>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "src/hilbert/hilbert.h"

namespace mrtheta {
namespace {

TEST(HilbertCurveTest, CreateValidatesArguments) {
  EXPECT_FALSE(HilbertCurve::Create(0, 4).ok());
  EXPECT_FALSE(HilbertCurve::Create(17, 1).ok());
  EXPECT_FALSE(HilbertCurve::Create(2, 0).ok());
  EXPECT_FALSE(HilbertCurve::Create(8, 8).ok());  // 64 bits > 62
  EXPECT_TRUE(HilbertCurve::Create(8, 7).ok());
}

TEST(HilbertCurveTest, TwoDimOrderOneIsTheClassicU) {
  // The order-1 2-D Hilbert curve visits (0,0),(0,1),(1,1),(1,0) or a
  // rotation; successive cells must be grid neighbours and all distinct.
  const HilbertCurve c = *HilbertCurve::Create(2, 1);
  std::set<std::pair<uint32_t, uint32_t>> seen;
  uint32_t prev[2];
  for (uint64_t i = 0; i < 4; ++i) {
    uint32_t xy[2];
    c.Decode(i, xy);
    seen.insert({xy[0], xy[1]});
    if (i > 0) {
      const int dist = std::abs(static_cast<int>(xy[0]) -
                                static_cast<int>(prev[0])) +
                       std::abs(static_cast<int>(xy[1]) -
                                static_cast<int>(prev[1]));
      EXPECT_EQ(dist, 1);
    }
    prev[0] = xy[0];
    prev[1] = xy[1];
  }
  EXPECT_EQ(seen.size(), 4u);
}

struct CurveParam {
  int dims;
  int order;
};

class HilbertPropertyTest : public ::testing::TestWithParam<CurveParam> {};

TEST_P(HilbertPropertyTest, EncodeDecodeRoundTrip) {
  const auto [dims, order] = GetParam();
  const HilbertCurve c = *HilbertCurve::Create(dims, order);
  std::vector<uint32_t> coords(dims);
  for (uint64_t i = 0; i < c.num_cells(); ++i) {
    c.Decode(i, coords);
    for (uint32_t v : coords) EXPECT_LT(v, c.side());
    EXPECT_EQ(c.Encode(coords), i);
  }
}

TEST_P(HilbertPropertyTest, ConsecutiveCellsAreGridNeighbours) {
  const auto [dims, order] = GetParam();
  const HilbertCurve c = *HilbertCurve::Create(dims, order);
  std::vector<uint32_t> prev(dims), cur(dims);
  c.Decode(0, prev);
  for (uint64_t i = 1; i < c.num_cells(); ++i) {
    c.Decode(i, cur);
    int dist = 0;
    for (int d = 0; d < dims; ++d) {
      dist += std::abs(static_cast<int>(cur[d]) - static_cast<int>(prev[d]));
    }
    EXPECT_EQ(dist, 1) << "between positions " << i - 1 << " and " << i;
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(
    DimsOrders, HilbertPropertyTest,
    ::testing::Values(CurveParam{1, 6}, CurveParam{2, 3}, CurveParam{2, 5},
                      CurveParam{3, 3}, CurveParam{4, 3}, CurveParam{5, 2},
                      CurveParam{6, 2}),
    [](const ::testing::TestParamInfo<CurveParam>& param_info) {
      return "d" + std::to_string(param_info.param.dims) + "o" +
             std::to_string(param_info.param.order);
    });

TEST(SegmentCoverageTest, RejectsBadSegmentCounts) {
  const HilbertCurve c = *HilbertCurve::Create(2, 2);
  EXPECT_FALSE(SegmentCoverage::Build(c, 0).ok());
  EXPECT_FALSE(SegmentCoverage::Build(c, 17).ok());
  EXPECT_TRUE(SegmentCoverage::Build(c, 16).ok());
}

TEST(SegmentCoverageTest, SegmentsPartitionTheCurve) {
  const HilbertCurve c = *HilbertCurve::Create(3, 2);
  const SegmentCoverage cov = *SegmentCoverage::Build(c, 7);
  EXPECT_EQ(cov.SegmentBegin(0), 0u);
  EXPECT_EQ(cov.SegmentEnd(6), c.num_cells());
  for (int s = 0; s < 6; ++s) {
    EXPECT_EQ(cov.SegmentEnd(s), cov.SegmentBegin(s + 1));
    // Balanced: sizes differ by at most one cell.
    const int64_t size =
        static_cast<int64_t>(cov.SegmentEnd(s) - cov.SegmentBegin(s));
    EXPECT_GE(size, static_cast<int64_t>(c.num_cells() / 7));
    EXPECT_LE(size, static_cast<int64_t>(c.num_cells() / 7) + 1);
  }
  for (uint64_t i = 0; i < c.num_cells(); ++i) {
    const int s = cov.SegmentOfIndex(i);
    EXPECT_GE(i, cov.SegmentBegin(s));
    EXPECT_LT(i, cov.SegmentEnd(s));
  }
}

TEST(SegmentCoverageTest, EverySliceIsCovered) {
  const HilbertCurve c = *HilbertCurve::Create(2, 4);
  const SegmentCoverage cov = *SegmentCoverage::Build(c, 8);
  for (int d = 0; d < 2; ++d) {
    for (uint32_t s = 0; s < c.side(); ++s) {
      EXPECT_FALSE(cov.SegmentsForSlice(d, s).empty());
    }
  }
}

TEST(SegmentCoverageTest, CoverageConsistentWithCellWalk) {
  // slice_segments and coverage_count must describe the same relation.
  const HilbertCurve c = *HilbertCurve::Create(2, 3);
  const SegmentCoverage cov = *SegmentCoverage::Build(c, 5);
  for (int seg = 0; seg < 5; ++seg) {
    for (int d = 0; d < 2; ++d) {
      int count = 0;
      for (uint32_t s = 0; s < c.side(); ++s) {
        const auto& segs = cov.SegmentsForSlice(d, s);
        count += std::count(segs.begin(), segs.end(), seg);
      }
      EXPECT_EQ(count, cov.CoverageCount(seg, d));
    }
  }
}

TEST(SegmentCoverageTest, TheoremTwoFairTraversal) {
  // A Hilbert segment of 1/k of the curve covers roughly equal proportions
  // of every dimension (the core of the Theorem 2 proof).
  const HilbertCurve c = *HilbertCurve::Create(3, 3);
  const SegmentCoverage cov = *SegmentCoverage::Build(c, 8);
  for (int seg = 0; seg < 8; ++seg) {
    const int c0 = cov.CoverageCount(seg, 0);
    for (int d = 1; d < 3; ++d) {
      const int cd = cov.CoverageCount(seg, d);
      EXPECT_LE(std::abs(c0 - cd), 2)
          << "segment " << seg << " covers dimensions unevenly";
    }
  }
}

TEST(SegmentCoverageTest, SingleSegmentCoversEverything) {
  const HilbertCurve c = *HilbertCurve::Create(2, 3);
  const SegmentCoverage cov = *SegmentCoverage::Build(c, 1);
  for (int d = 0; d < 2; ++d) {
    EXPECT_EQ(cov.CoverageCount(0, d), static_cast<int>(c.side()));
  }
  EXPECT_EQ(cov.ReplicasForUniformRelation(0, 1000), 1000);
}

TEST(SegmentCoverageTest, ScoreMatchesReplicaAccounting) {
  const HilbertCurve c = *HilbertCurve::Create(2, 3);
  const SegmentCoverage cov = *SegmentCoverage::Build(c, 4);
  // Uniform populations: Score == sum of per-dimension replica counts.
  const int64_t rows = 800;
  std::vector<std::vector<int64_t>> pop(
      2, std::vector<int64_t>(c.side(), rows / c.side()));
  const int64_t score = cov.Score(pop);
  const int64_t replicas = cov.ReplicasForUniformRelation(0, rows) +
                           cov.ReplicasForUniformRelation(1, rows);
  EXPECT_EQ(score, replicas);
}

TEST(SegmentCoverageTest, MoreSegmentsMeansMoreReplicas) {
  // Fig. 5: network volume grows with the number of reduce tasks.
  const HilbertCurve c = *HilbertCurve::Create(3, 2);
  int64_t prev = 0;
  for (int k : {1, 2, 4, 8}) {
    const SegmentCoverage cov = *SegmentCoverage::Build(c, k);
    int64_t total = 0;
    for (int d = 0; d < 3; ++d) {
      total += cov.ReplicasForUniformRelation(d, 1000);
    }
    EXPECT_GE(total, prev) << "k=" << k;
    prev = total;
  }
  EXPECT_GT(prev, 3000);  // k=8 must replicate beyond the k=1 baseline
}

TEST(ChooseGridOrderTest, MeetsTargetWithinCap) {
  // 2 dims, 16 segments, 64 cells/segment target -> >= 1024 cells.
  const int order = ChooseGridOrder(2, 16, 64, 20);
  EXPECT_GE(uint64_t{1} << (2 * order), 1024u);
  // Cap binds: 6 dims with max 18 bits -> order 3.
  EXPECT_LE(ChooseGridOrder(6, 1024, 64, 18) * 6, 18);
  EXPECT_GE(ChooseGridOrder(1, 1, 1, 20), 1);
}

TEST(ApproxDuplicationFactorTest, MatchesClosedForm) {
  EXPECT_DOUBLE_EQ(ApproxDuplicationFactor(1, 64), 1.0);
  EXPECT_DOUBLE_EQ(ApproxDuplicationFactor(2, 64), 8.0);
  EXPECT_NEAR(ApproxDuplicationFactor(3, 64), 16.0, 1e-9);
  EXPECT_DOUBLE_EQ(ApproxDuplicationFactor(4, 1), 1.0);
}

TEST(ApproxDuplicationFactorTest, TracksMeasuredCoverage) {
  // The closed form should approximate the exact per-tuple duplication
  // measured from a real coverage (within a small factor).
  const HilbertCurve c = *HilbertCurve::Create(2, 4);
  const int k = 16;
  const SegmentCoverage cov = *SegmentCoverage::Build(c, k);
  const int64_t rows = 1 << 12;
  const double measured =
      static_cast<double>(cov.ReplicasForUniformRelation(0, rows)) / rows;
  const double predicted = ApproxDuplicationFactor(2, k);
  EXPECT_GT(measured, predicted * 0.4);
  EXPECT_LT(measured, predicted * 2.5);
}

}  // namespace
}  // namespace mrtheta
