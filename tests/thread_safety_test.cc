// Runtime behaviour of the annotated lock primitives
// (src/common/thread_annotations.h, docs/STATIC_ANALYSIS.md): the
// held-lock registry behind HeldByCurrentThread / ThisThreadHoldsNamed,
// the CondVar wait contract, and the two abort-on-misuse guards this PR
// introduced — MemoryBudget's page-pool lock-ordering CHECK and the
// nested-TraceSession CHECK (formerly an assert() that vanished in
// Release builds). The *static* side — that mis-locked code fails to
// compile — is covered by scripts/check_thread_safety.sh over
// tests/static/.

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/thread_annotations.h"
#include "src/mem/memory_budget.h"
#include "src/obs/trace.h"

namespace mrtheta {
namespace {

TEST(MutexTest, HeldByCurrentThreadTracksLockAndUnlock) {
  Mutex mu;
  EXPECT_FALSE(mu.HeldByCurrentThread());
  {
    MutexLock lock(&mu);
    EXPECT_TRUE(mu.HeldByCurrentThread());
  }
  EXPECT_FALSE(mu.HeldByCurrentThread());
}

TEST(MutexTest, RegistryIsPerThread) {
  Mutex mu;
  MutexLock lock(&mu);
  bool held_in_other_thread = true;
  std::thread other(
      [&] { held_in_other_thread = mu.HeldByCurrentThread(); });
  other.join();
  EXPECT_TRUE(mu.HeldByCurrentThread());
  EXPECT_FALSE(held_in_other_thread);
}

TEST(MutexTest, TryLockRegistersLikeLock) {
  Mutex mu;
  ASSERT_TRUE(mu.TryLock());
  EXPECT_TRUE(mu.HeldByCurrentThread());
  mu.Unlock();
  EXPECT_FALSE(mu.HeldByCurrentThread());
}

TEST(MutexTest, NonLifoUnlockOrderIsTolerated) {
  // The registry must not assume LIFO: hand-over-hand patterns release
  // the outer lock first.
  Mutex a, b;
  a.Lock();
  b.Lock();
  a.Unlock();
  EXPECT_FALSE(a.HeldByCurrentThread());
  EXPECT_TRUE(b.HeldByCurrentThread());
  b.Unlock();
}

TEST(MutexTest, ThisThreadHoldsNamedMatchesByName) {
  Mutex named("test.lock_order_probe");
  Mutex anonymous;
  EXPECT_FALSE(Mutex::ThisThreadHoldsNamed("test.lock_order_probe"));
  {
    MutexLock lock(&anonymous);
    // An unnamed lock matches no name.
    EXPECT_FALSE(Mutex::ThisThreadHoldsNamed("test.lock_order_probe"));
  }
  {
    MutexLock lock(&named);
    EXPECT_TRUE(Mutex::ThisThreadHoldsNamed("test.lock_order_probe"));
    EXPECT_FALSE(Mutex::ThisThreadHoldsNamed("test.some_other_name"));
  }
  EXPECT_FALSE(Mutex::ThisThreadHoldsNamed("test.lock_order_probe"));
}

TEST(MutexTest, NameMatchingIsByContentAcrossInstances) {
  // Two distinct Mutex objects with the same name are one ordering class;
  // the registry compares by string content, not pointer identity
  // (distinct translation units may hold distinct literal copies).
  const std::string name_copy("test.same_name");
  Mutex first("test.same_name");
  Mutex second(name_copy.c_str());
  MutexLock lock(&second);
  EXPECT_TRUE(Mutex::ThisThreadHoldsNamed("test.same_name"));
  EXPECT_FALSE(first.HeldByCurrentThread());
}

TEST(CondVarTest, WaitReleasesAndReacquires) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::thread producer([&] {
    MutexLock lock(&mu);
    ready = true;
    cv.NotifyAll();
  });
  {
    MutexLock lock(&mu);
    while (!ready) cv.Wait(&mu);
    // Back from the wait the lock is held again (registry included).
    EXPECT_TRUE(mu.HeldByCurrentThread());
    EXPECT_TRUE(ready);
  }
  producer.join();
  EXPECT_FALSE(mu.HeldByCurrentThread());
}

// --- Cross-subsystem lock-ordering guard (satellite 6) ------------------
//
// MemoryBudget's page pool is a lock-hierarchy leaf: AcquirePage and
// ReleasePage must never run while a shuffle-spool partition lock is
// held (spill inside a partition critical section could wait on the pool
// while a page holder waits on the partition — the classic inversion).
// The static MRTHETA_EXCLUDES(free_mu_) cannot see the spool's private
// mutex, so the contract is enforced at runtime through the named
// registry. These tests pin both sides of that guard.

TEST(LockOrderTest, PagePoolWorksWithoutPartitionLock) {
  StatusOr<MemoryBudget::PagePtr> page = MemoryBudget::Global().AcquirePage();
  ASSERT_TRUE(page.ok());
  MemoryBudget::Global().ReleasePage(*std::move(page));
}

TEST(LockOrderTest, PagePoolWorksUnderUnrelatedLocks) {
  Mutex unrelated("test.unrelated");
  MutexLock lock(&unrelated);
  StatusOr<MemoryBudget::PagePtr> page = MemoryBudget::Global().AcquirePage();
  ASSERT_TRUE(page.ok());
  MemoryBudget::Global().ReleasePage(*std::move(page));
}

TEST(LockOrderDeathTest, AcquirePageUnderSpoolPartitionLockAborts) {
  // Any mutex carrying the spool partition name is in the ordering class
  // — this is exactly how ShuffleSpool's partition_mu_ registers itself.
  Mutex spool_like(kSpoolPartitionLockName);
  MutexLock lock(&spool_like);
  EXPECT_DEATH(
      // Deliberate discard: the call aborts before returning a page.
      static_cast<void>(MemoryBudget::Global().AcquirePage()),
      "MRTHETA_CHECK failed");
}

TEST(LockOrderDeathTest, ReleasePageUnderSpoolPartitionLockAborts) {
  StatusOr<MemoryBudget::PagePtr> page = MemoryBudget::Global().AcquirePage();
  ASSERT_TRUE(page.ok());
  MemoryBudget::PagePtr& raw = *page;
  Mutex spool_like(kSpoolPartitionLockName);
  {
    MutexLock lock(&spool_like);
    EXPECT_DEATH(MemoryBudget::Global().ReleasePage(std::move(raw)),
                 "MRTHETA_CHECK failed");
  }
  // The parent's page survives the forked death test; give it back.
  MemoryBudget::Global().ReleasePage(*std::move(page));
}

// --- Nested-TraceSession guard (satellite 1) ----------------------------
//
// TraceSession nesting used to be a raw assert(): invisible in NDEBUG
// Release builds, where the inner session silently recorded nothing and
// the caller's trace went missing. It is now an MRTHETA_CHECK that
// aborts in every build type.

TEST(TraceSessionDeathTest, NestingAbortsInEveryBuildType) {
  Tracer outer_tracer;
  TraceSession outer(&outer_tracer);
  Tracer inner_tracer;
  EXPECT_DEATH(TraceSession inner(&inner_tracer), "nested TraceSession");
}

TEST(TraceSessionTest, SequentialSessionsAreFine) {
  Tracer first;
  { TraceSession session(&first); }
  Tracer second;
  { TraceSession session(&second); }
  SUCCEED();
}

}  // namespace
}  // namespace mrtheta
