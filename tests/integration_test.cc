// Cross-module integration tests: the paper's actual benchmark queries run
// end-to-end at miniature scale, all planners checked against the oracle.

#include <memory>

#include <gtest/gtest.h>

#include "src/baselines/baseline_planners.h"
#include "src/core/executor.h"
#include "src/core/planner.h"
#include "src/cost/calibration.h"
#include "src/exec/naive_join.h"
#include "src/workload/flights.h"
#include "src/workload/mobile.h"
#include "src/workload/tpch.h"

namespace mrtheta {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cluster_ = std::make_unique<SimCluster>(ClusterConfig{});
    const auto calib = CalibrateCostModel(*cluster_);
    ASSERT_TRUE(calib.ok());
    params_ = calib->params;
  }

  // Runs the query with every planner, asserts identical results and
  // agreement with the oracle; returns the per-system simulated seconds
  // in order {ours, ysmart, hive, pig}.
  std::vector<double> CheckAllSystems(const Query& q) {
    std::vector<int> indices(q.num_relations());
    for (int i = 0; i < q.num_relations(); ++i) indices[i] = i;
    const auto oracle =
        NaiveMultiwayJoin(q.relations(), indices, q.conditions());
    EXPECT_TRUE(oracle.ok());

    Executor executor(cluster_.get());
    Planner planner(cluster_.get(), params_);
    std::vector<StatusOr<QueryPlan>> plans;
    plans.push_back(planner.Plan(q));
    plans.push_back(PlanYSmartStyle(q, *cluster_));
    plans.push_back(PlanHiveStyle(q, *cluster_));
    plans.push_back(PlanPigStyle(q, *cluster_));

    std::vector<double> seconds;
    for (const auto& plan : plans) {
      EXPECT_TRUE(plan.ok());
      const auto result = executor.Execute(q, *plan);
      EXPECT_TRUE(result.ok()) << plan->strategy;
      const Relation sorted = SortedByRows(*result->result_ids);
      EXPECT_EQ(sorted.num_rows(), oracle->num_rows()) << plan->strategy;
      if (sorted.num_rows() == oracle->num_rows()) {
        int64_t mismatches = 0;
        for (int64_t r = 0; r < sorted.num_rows(); ++r) {
          for (int c = 0; c < sorted.schema().num_columns(); ++c) {
            mismatches += sorted.GetInt(r, c) != oracle->GetInt(r, c);
          }
        }
        EXPECT_EQ(mismatches, 0) << plan->strategy;
      }
      seconds.push_back(ToSeconds(result->makespan));
    }
    return seconds;
  }

  std::unique_ptr<SimCluster> cluster_;
  CostModelParams params_;
};

TEST_F(IntegrationTest, MobileQ1AllSystemsAgree) {
  MobileDataOptions options;
  options.physical_rows = 120;
  options.logical_bytes = 4 * kGiB;
  const auto q = BuildMobileQuery(1, options);
  ASSERT_TRUE(q.ok());
  CheckAllSystems(*q);
}

TEST_F(IntegrationTest, MobileQ2AllSystemsAgree) {
  MobileDataOptions options;
  options.physical_rows = 80;
  options.logical_bytes = 4 * kGiB;
  const auto q = BuildMobileQuery(2, options);
  ASSERT_TRUE(q.ok());
  CheckAllSystems(*q);
}

TEST_F(IntegrationTest, MobileQ3AllSystemsAgree) {
  MobileDataOptions options;
  options.physical_rows = 60;
  options.logical_bytes = 4 * kGiB;
  const auto q = BuildMobileQuery(3, options);
  ASSERT_TRUE(q.ok());
  CheckAllSystems(*q);
}

TEST_F(IntegrationTest, MobileQ4AllSystemsAgree) {
  MobileDataOptions options;
  options.physical_rows = 50;
  options.logical_bytes = 4 * kGiB;
  const auto q = BuildMobileQuery(4, options);
  ASSERT_TRUE(q.ok());
  CheckAllSystems(*q);
}

TEST_F(IntegrationTest, TpchQ17AllSystemsAgree) {
  TpchOptions options;
  options.scale_factor = 50;
  options.physical_lineitem_rows = 600;
  const TpchData db = GenerateTpch(options);
  const auto q = BuildTpchQuery(17, db);
  ASSERT_TRUE(q.ok());
  CheckAllSystems(*q);
}

TEST_F(IntegrationTest, TpchQ18AllSystemsAgree) {
  TpchOptions options;
  options.scale_factor = 50;
  options.physical_lineitem_rows = 600;
  const TpchData db = GenerateTpch(options);
  const auto q = BuildTpchQuery(18, db);
  ASSERT_TRUE(q.ok());
  CheckAllSystems(*q);
}

TEST_F(IntegrationTest, TpchQ7AllSystemsAgree) {
  TpchOptions options;
  options.scale_factor = 50;
  options.physical_lineitem_rows = 600;
  const TpchData db = GenerateTpch(options);
  const auto q = BuildTpchQuery(7, db);
  ASSERT_TRUE(q.ok());
  CheckAllSystems(*q);
}

TEST_F(IntegrationTest, TpchQ21AllSystemsAgree) {
  TpchOptions options;
  options.scale_factor = 50;
  options.physical_lineitem_rows = 400;
  const TpchData db = GenerateTpch(options);
  const auto q = BuildTpchQuery(21, db);
  ASSERT_TRUE(q.ok());
  CheckAllSystems(*q);
}

TEST_F(IntegrationTest, FlightItineraryAllSystemsAgree) {
  FlightLegOptions options;
  options.physical_rows = 150;
  options.logical_rows = kGiB / 28;
  std::vector<RelationPtr> legs = {GenerateFlightLeg(0, options),
                                   GenerateFlightLeg(1, options),
                                   GenerateFlightLeg(2, options)};
  const auto q = BuildItineraryQuery(
      legs, {StayOver{60, 240}, StayOver{120, 360}});
  ASSERT_TRUE(q.ok());
  CheckAllSystems(*q);
}

TEST_F(IntegrationTest, InequalityChainFavoursSingleJob) {
  // The headline behaviour: on an inequality-only chain our plan beats the
  // Hive-style cascade in simulated time (the cascade materializes band
  // intermediates; ours evaluates the chain in one Hilbert job).
  FlightLegOptions options;
  options.physical_rows = 200;
  options.logical_rows = 2 * kGiB / 28;
  std::vector<RelationPtr> legs = {GenerateFlightLeg(0, options),
                                   GenerateFlightLeg(1, options),
                                   GenerateFlightLeg(2, options)};
  const auto q = BuildItineraryQuery(
      legs, {StayOver{45, 360}, StayOver{45, 360}});
  ASSERT_TRUE(q.ok());
  const auto seconds = CheckAllSystems(*q);
  EXPECT_LT(seconds[0], seconds[2]);  // ours < hive
  EXPECT_LT(seconds[0], seconds[3]);  // ours < pig
}

TEST_F(IntegrationTest, DeterministicAcrossRuns) {
  MobileDataOptions options;
  options.physical_rows = 100;
  options.logical_bytes = 2 * kGiB;
  const auto q = BuildMobileQuery(1, options);
  ASSERT_TRUE(q.ok());
  Planner planner(cluster_.get(), params_);
  Executor executor(cluster_.get());
  const auto plan = planner.Plan(*q);
  ASSERT_TRUE(plan.ok());
  const auto a = executor.Execute(*q, *plan, /*seed=*/7);
  const auto b = executor.Execute(*q, *plan, /*seed=*/7);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->makespan, b->makespan);
  EXPECT_EQ(a->result_ids->num_rows(), b->result_ids->num_rows());
}

}  // namespace
}  // namespace mrtheta
