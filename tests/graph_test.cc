// Tests for the join graph and Algorithm 2 (join-path graph construction
// with Lemma 1/2 pruning), including the paper's Fig. 1 example.

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "src/graph/join_path_graph.h"

namespace mrtheta {
namespace {

// The paper's Fig. 1 join graph: 5 relations, 6 conditions.
//   θ1:(R1,R2) θ2:(R2,R3) θ3:(R1,R3) θ4:(R3,R4) θ5:(R4,R5) θ6:(R5,R3)
// (0-indexed here: θ0..θ5 over R0..R4.)
JoinGraph Fig1Graph() {
  JoinGraph g(5);
  EXPECT_TRUE(g.AddEdge(0, 1, 0).ok());
  EXPECT_TRUE(g.AddEdge(1, 2, 1).ok());
  EXPECT_TRUE(g.AddEdge(0, 2, 2).ok());
  EXPECT_TRUE(g.AddEdge(2, 3, 3).ok());
  EXPECT_TRUE(g.AddEdge(3, 4, 4).ok());
  EXPECT_TRUE(g.AddEdge(4, 2, 5).ok());
  return g;
}

CandidateCostFn UnitCost() {
  return [](const std::vector<int>& thetas, const std::vector<int>&) {
    CandidateCost c;
    c.weight = static_cast<double>(thetas.size());
    c.schedule_slots = 1;
    return c;
  };
}

TEST(JoinGraphTest, BasicAccessors) {
  JoinGraph g = Fig1Graph();
  EXPECT_EQ(g.num_vertices(), 5);
  EXPECT_EQ(g.num_edges(), 6);
  EXPECT_EQ(g.Degree(2), 4);
  EXPECT_EQ(g.Degree(0), 2);
}

TEST(JoinGraphTest, RejectsBadEdges) {
  JoinGraph g(3);
  EXPECT_FALSE(g.AddEdge(0, 0, 0).ok());
  EXPECT_FALSE(g.AddEdge(0, 5, 0).ok());
  EXPECT_FALSE(g.AddEdge(-1, 1, 0).ok());
}

TEST(JoinGraphTest, ParallelEdgesAllowed) {
  JoinGraph g(2);
  EXPECT_TRUE(g.AddEdge(0, 1, 0).ok());
  EXPECT_TRUE(g.AddEdge(0, 1, 1).ok());
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_EQ(g.Degree(0), 2);
}

TEST(JoinGraphTest, Connectivity) {
  JoinGraph g(3);
  ASSERT_TRUE(g.AddEdge(0, 1, 0).ok());
  EXPECT_FALSE(g.IsConnected());
  ASSERT_TRUE(g.AddEdge(1, 2, 1).ok());
  EXPECT_TRUE(g.IsConnected());
}

TEST(JoinGraphTest, Fig1HasEulerianCircuit) {
  // The paper notes Fig. 1's graph admits an Eulerian circuit: all degrees
  // are even (R1:2, R2:2, R3:4, R4:2, R5:2).
  JoinGraph g = Fig1Graph();
  EXPECT_TRUE(g.HasEulerianTrail());
  EXPECT_TRUE(g.HasEulerianCircuit());
}

TEST(JoinGraphTest, PathGraphHasTrailNotCircuit) {
  JoinGraph g(3);
  ASSERT_TRUE(g.AddEdge(0, 1, 0).ok());
  ASSERT_TRUE(g.AddEdge(1, 2, 1).ok());
  EXPECT_TRUE(g.HasEulerianTrail());
  EXPECT_FALSE(g.HasEulerianCircuit());
}

TEST(JoinGraphTest, FourOddVerticesHaveNoTrail) {
  JoinGraph g(4);
  // Star plus an extra edge: degrees 3,1,1,1 -> 4 odd.
  ASSERT_TRUE(g.AddEdge(0, 1, 0).ok());
  ASSERT_TRUE(g.AddEdge(0, 2, 1).ok());
  ASSERT_TRUE(g.AddEdge(0, 3, 2).ok());
  EXPECT_FALSE(g.HasEulerianTrail());
}

TEST(JoinPathGraphTest, SingleEdge) {
  JoinGraph g(2);
  ASSERT_TRUE(g.AddEdge(0, 1, 0).ok());
  const auto cands = BuildJoinPathGraph(g, UnitCost());
  ASSERT_TRUE(cands.ok());
  ASSERT_EQ(cands->size(), 1u);
  EXPECT_EQ((*cands)[0].theta_mask, 1u);
  EXPECT_EQ((*cands)[0].relations, (std::vector<int>{0, 1}));
}

TEST(JoinPathGraphTest, TriangleEnumeratesAllTrails) {
  JoinGraph g(3);
  ASSERT_TRUE(g.AddEdge(0, 1, 0).ok());
  ASSERT_TRUE(g.AddEdge(1, 2, 1).ok());
  ASSERT_TRUE(g.AddEdge(2, 0, 2).ok());
  JoinPathGraphOptions opts;
  opts.enable_pruning = false;
  const auto cands = BuildJoinPathGraph(g, UnitCost(), opts);
  ASSERT_TRUE(cands.ok());
  // Distinct trail edge-sets in a triangle: 3 singles, 3 pairs, 1 full.
  std::set<uint32_t> masks;
  for (const auto& c : *cands) masks.insert(c.theta_mask);
  EXPECT_EQ(masks.size(), 7u);
}

TEST(JoinPathGraphTest, Fig1ContainsThePaperPath) {
  // The Fig. 1 matrix lists {3,4,6,5,2} (1-indexed) as a no-edge-repeating
  // path between R1 and R2 — 0-indexed mask over θ {2,3,5,4,1}.
  JoinPathGraphOptions opts;
  opts.enable_pruning = false;
  JoinGraph g = Fig1Graph();
  const auto cands = BuildJoinPathGraph(g, UnitCost(), opts);
  ASSERT_TRUE(cands.ok());
  const uint32_t want = (1u << 2) | (1u << 3) | (1u << 5) | (1u << 4) |
                        (1u << 1);
  bool found = false;
  for (const auto& c : *cands) {
    if (c.theta_mask == want) {
      found = true;
      // That trail visits all five relations.
      EXPECT_EQ(c.relations.size(), 5u);
    }
  }
  EXPECT_TRUE(found);
}

TEST(JoinPathGraphTest, Fig1HasFullCoverCandidate) {
  // An Eulerian circuit exists, so some candidate covers all six θ.
  JoinPathGraphOptions opts;
  opts.enable_pruning = false;
  const auto cands = BuildJoinPathGraph(Fig1Graph(), UnitCost(), opts);
  ASSERT_TRUE(cands.ok());
  bool found = false;
  for (const auto& c : *cands) found |= c.theta_mask == 0x3fu;
  EXPECT_TRUE(found);
}

TEST(JoinPathGraphTest, CandidatesSortedByWeight) {
  const auto cands = BuildJoinPathGraph(Fig1Graph(), UnitCost());
  ASSERT_TRUE(cands.ok());
  for (size_t i = 1; i < cands->size(); ++i) {
    EXPECT_LE((*cands)[i - 1].weight, (*cands)[i].weight);
  }
}

TEST(JoinPathGraphTest, Lemma1PrunesSubstitutableCandidates) {
  // Cost grows super-linearly in conditions => multi-edge candidates are
  // substitutable by their single-edge parts and must be pruned.
  CandidateCostFn expensive = [](const std::vector<int>& thetas,
                                 const std::vector<int>&) {
    CandidateCost c;
    const double n = static_cast<double>(thetas.size());
    c.weight = n * n * 10.0;
    c.schedule_slots = static_cast<int>(n);
    return c;
  };
  JoinPathGraphStats stats;
  const auto cands =
      BuildJoinPathGraph(Fig1Graph(), expensive, {}, &stats);
  ASSERT_TRUE(cands.ok());
  EXPECT_GT(stats.pruned_by_lemma1, 0);
  // Only the 6 single-condition candidates survive.
  EXPECT_EQ(cands->size(), 6u);
}

TEST(JoinPathGraphTest, Lemma2PrunesSupersets) {
  CandidateCostFn expensive = [](const std::vector<int>& thetas,
                                 const std::vector<int>&) {
    CandidateCost c;
    const double n = static_cast<double>(thetas.size());
    c.weight = n * n * 10.0;
    c.schedule_slots = static_cast<int>(n);
    return c;
  };
  JoinPathGraphStats stats;
  ASSERT_TRUE(BuildJoinPathGraph(Fig1Graph(), expensive, {}, &stats).ok());
  // Once a 2-hop trail is pruned, its 3-hop supersets are dropped without
  // cost evaluation.
  EXPECT_GT(stats.pruned_by_lemma2, 0);
}

TEST(JoinPathGraphTest, PruningNeverDropsCoverage) {
  // Whatever the cost function, the union of surviving candidates must
  // still cover all conditions (single edges are only pruned if covered).
  JoinPathGraphStats stats;
  const auto cands = BuildJoinPathGraph(
      Fig1Graph(),
      [](const std::vector<int>& thetas, const std::vector<int>&) {
        CandidateCost c;
        c.weight = 100.0 / thetas.size();  // cheaper when bigger
        c.schedule_slots = 1;
        return c;
      },
      {}, &stats);
  ASSERT_TRUE(cands.ok());
  uint32_t covered = 0;
  for (const auto& c : *cands) covered |= c.theta_mask;
  EXPECT_EQ(covered, 0x3fu);
}

TEST(JoinPathGraphTest, MaxHopsLimitsTrailLength) {
  JoinPathGraphOptions opts;
  opts.max_hops = 1;
  opts.enable_pruning = false;
  const auto cands = BuildJoinPathGraph(Fig1Graph(), UnitCost(), opts);
  ASSERT_TRUE(cands.ok());
  EXPECT_EQ(cands->size(), 6u);
  for (const auto& c : *cands) EXPECT_EQ(c.num_conditions(), 1);
}

TEST(JoinPathGraphTest, ValidatesInput) {
  JoinGraph empty(3);
  EXPECT_FALSE(BuildJoinPathGraph(empty, UnitCost()).ok());
  JoinGraph g(2);
  ASSERT_TRUE(g.AddEdge(0, 1, 0).ok());
  EXPECT_FALSE(BuildJoinPathGraph(g, nullptr).ok());
}

TEST(JoinPathGraphTest, RelationsInTrailVisitOrder) {
  JoinGraph g(3);
  ASSERT_TRUE(g.AddEdge(0, 1, 0).ok());
  ASSERT_TRUE(g.AddEdge(1, 2, 1).ok());
  JoinPathGraphOptions opts;
  opts.enable_pruning = false;
  const auto cands = BuildJoinPathGraph(g, UnitCost(), opts);
  ASSERT_TRUE(cands.ok());
  for (const auto& c : *cands) {
    if (c.theta_mask == 0x3u) {
      // Trail 0-1-2 (or reverse): relations are distinct and in order.
      EXPECT_EQ(c.relations.size(), 3u);
      std::set<int> uniq(c.relations.begin(), c.relations.end());
      EXPECT_EQ(uniq.size(), 3u);
    }
  }
}

}  // namespace
}  // namespace mrtheta
