// Unit tests for src/stats: histograms, sketches, sampling, selectivity.

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/stats/selectivity.h"
#include "src/stats/table_stats.h"

namespace mrtheta {
namespace {

std::vector<double> Uniform(int n, double lo, double hi, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = lo + rng.UniformDouble() * (hi - lo);
  return v;
}

TEST(HistogramTest, EmptyInput) {
  Histogram h = Histogram::Build({}, 8);
  EXPECT_EQ(h.total_count(), 0);
  EXPECT_EQ(h.FracBelow(1.0), 0.0);
}

TEST(HistogramTest, SingleValueColumn) {
  std::vector<double> v(100, 5.0);
  Histogram h = Histogram::Build(v, 8);
  EXPECT_EQ(h.total_count(), 100);
  EXPECT_EQ(h.min(), 5.0);
  EXPECT_EQ(h.max(), 5.0);
  EXPECT_EQ(h.FracBelow(4.9), 0.0);
  EXPECT_EQ(h.FracBelow(5.1), 1.0);
}

TEST(HistogramTest, FracBelowUniform) {
  const auto v = Uniform(50000, 0.0, 100.0, 1);
  Histogram h = Histogram::Build(v, 64);
  EXPECT_NEAR(h.FracBelow(25.0), 0.25, 0.02);
  EXPECT_NEAR(h.FracBelow(50.0), 0.50, 0.02);
  EXPECT_NEAR(h.FracBelow(90.0), 0.90, 0.02);
  EXPECT_EQ(h.FracBelow(-1.0), 0.0);
  EXPECT_EQ(h.FracBelow(200.0), 1.0);
}

TEST(HistogramTest, FracBetween) {
  const auto v = Uniform(50000, 0.0, 100.0, 2);
  Histogram h = Histogram::Build(v, 64);
  EXPECT_NEAR(h.FracBetween(20.0, 40.0), 0.2, 0.02);
  EXPECT_EQ(h.FracBetween(40.0, 20.0), 0.0);
}

TEST(HistogramTest, BinBoundaries) {
  std::vector<double> v = {0.0, 10.0};
  Histogram h = Histogram::Build(v, 10);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(9), 10.0);
  EXPECT_EQ(h.bin_count(0), 1);
  EXPECT_EQ(h.bin_count(9), 1);
}

TEST(KmvSketchTest, ExactBelowK) {
  KmvSketch sketch(256);
  for (int i = 0; i < 100; ++i) sketch.InsertInt(i % 50);
  EXPECT_NEAR(sketch.Estimate(), 50.0, 1.0);
}

TEST(KmvSketchTest, EstimatesLargeCardinality) {
  KmvSketch sketch(256);
  for (int i = 0; i < 100000; ++i) sketch.InsertInt(i);
  EXPECT_NEAR(sketch.Estimate(), 100000.0, 15000.0);
}

TEST(KmvSketchTest, DuplicatesDoNotInflate) {
  KmvSketch a(64), b(64);
  for (int i = 0; i < 1000; ++i) a.InsertInt(i % 10);
  for (int i = 0; i < 10; ++i) b.InsertInt(i);
  EXPECT_DOUBLE_EQ(a.Estimate(), b.Estimate());
}

TEST(KmvSketchTest, StringsAndDoubles) {
  KmvSketch sketch;
  sketch.InsertString("a");
  sketch.InsertString("b");
  sketch.InsertDouble(1.5);
  EXPECT_NEAR(sketch.Estimate(), 3.0, 0.5);
}

TEST(ReservoirTest, TakesAllWhenSmall) {
  const auto rows = ReservoirSampleRows(5, 10, 1);
  EXPECT_EQ(rows.size(), 5u);
}

TEST(ReservoirTest, UniformInclusion) {
  // Each of 1000 rows should appear in a 100-row sample ~10% of the time.
  std::vector<int> hits(1000, 0);
  for (uint64_t seed = 0; seed < 200; ++seed) {
    for (int64_t r : ReservoirSampleRows(1000, 100, seed)) hits[r]++;
  }
  int extremes = 0;
  for (int h : hits) {
    if (h < 5 || h > 40) ++extremes;
  }
  EXPECT_LT(extremes, 20);
}

RelationPtr MakeIntRelation(int64_t rows, int64_t modulo, uint64_t seed) {
  auto rel = std::make_shared<Relation>(
      "t", Schema({{"k", ValueType::kInt64}, {"v", ValueType::kInt64}}));
  Rng rng(seed);
  for (int64_t i = 0; i < rows; ++i) {
    rel->AppendIntRow({static_cast<int64_t>(rng.Uniform(modulo)),
                       rng.UniformInt(0, 999)});
  }
  return rel;
}

TEST(TableStatsTest, BasicShape) {
  RelationPtr rel = MakeIntRelation(5000, 100, 3);
  const TableStats stats = BuildTableStats(*rel);
  EXPECT_EQ(stats.logical_rows, 5000);
  ASSERT_EQ(stats.columns.size(), 2u);
  EXPECT_NEAR(stats.column(0).distinct, 100.0, 10.0);
  EXPECT_GE(stats.column(0).min, 0.0);
  EXPECT_LE(stats.column(0).max, 99.0);
}

TEST(TableStatsTest, KeyLikeColumnScalesToLogical) {
  auto rel = std::make_shared<Relation>(
      "t", Schema({{"id", ValueType::kInt64}}));
  for (int64_t i = 0; i < 2000; ++i) rel->AppendIntRow({i});
  rel->set_logical_rows(1000000);
  const TableStats stats = BuildTableStats(*rel);
  // All-distinct sample => treat as key: distinct ≈ logical cardinality.
  EXPECT_GT(stats.column(0).distinct, 500000.0);
}

TEST(TableStatsTest, LowCardinalityColumnStaysPut) {
  RelationPtr rel = MakeIntRelation(2000, 50, 5);
  auto mutable_rel = std::const_pointer_cast<Relation>(rel);
  mutable_rel->set_logical_rows(1000000);
  const TableStats stats = BuildTableStats(*rel);
  EXPECT_NEAR(stats.column(0).distinct, 50.0, 10.0);
}

ColumnStats MakeUniformStats(double lo, double hi, double distinct,
                             uint64_t seed) {
  ColumnStats cs;
  cs.numeric = true;
  cs.min = lo;
  cs.max = hi;
  cs.distinct = distinct;
  const auto v = Uniform(20000, lo, hi, seed);
  cs.histogram = Histogram::Build(v, 64);
  return cs;
}

TEST(SelectivityTest, UniformLessThan) {
  const ColumnStats a = MakeUniformStats(0, 100, 1000, 7);
  const ColumnStats b = MakeUniformStats(0, 100, 1000, 8);
  // P(a < b) = 0.5 for iid uniforms.
  EXPECT_NEAR(EstimateThetaSelectivity(a, b, ThetaOp::kLt, 0.0), 0.5, 0.05);
  EXPECT_NEAR(EstimateThetaSelectivity(a, b, ThetaOp::kGe, 0.0), 0.5, 0.05);
}

TEST(SelectivityTest, DisjointRanges) {
  const ColumnStats a = MakeUniformStats(0, 10, 100, 9);
  const ColumnStats b = MakeUniformStats(100, 110, 100, 10);
  EXPECT_NEAR(EstimateThetaSelectivity(a, b, ThetaOp::kLt, 0.0), 1.0, 0.01);
  EXPECT_NEAR(EstimateThetaSelectivity(a, b, ThetaOp::kGt, 0.0), 0.0, 0.01);
  EXPECT_NEAR(EstimateThetaSelectivity(a, b, ThetaOp::kEq, 0.0), 0.0, 1e-6);
}

TEST(SelectivityTest, OffsetShiftsTheBand) {
  const ColumnStats a = MakeUniformStats(0, 100, 1000, 11);
  const ColumnStats b = MakeUniformStats(0, 100, 1000, 12);
  // P(a + 100 < b) = 0 ; P(a - 100 < b) = 1.
  EXPECT_NEAR(EstimateThetaSelectivity(a, b, ThetaOp::kLt, 100.0), 0.0,
              0.02);
  EXPECT_NEAR(EstimateThetaSelectivity(a, b, ThetaOp::kLt, -100.0), 1.0,
              0.02);
}

TEST(SelectivityTest, EqualityUniformMatchesOneOverD) {
  const ColumnStats a = MakeUniformStats(0, 100, 200, 13);
  const ColumnStats b = MakeUniformStats(0, 100, 200, 14);
  const double sel = EstimateThetaSelectivity(a, b, ThetaOp::kEq, 0.0);
  EXPECT_NEAR(sel, 1.0 / 200, 0.5 / 200);
}

TEST(SelectivityTest, SkewRaisesEqualitySelectivity) {
  // Zipf-distributed values collide far more often than uniform 1/d.
  Rng rng(15);
  std::vector<double> za(20000), zb(20000);
  for (auto& v : za) v = static_cast<double>(rng.Zipf(200, 1.0));
  for (auto& v : zb) v = static_cast<double>(rng.Zipf(200, 1.0));
  ColumnStats a, b;
  a.numeric = b.numeric = true;
  a.distinct = b.distinct = 200;
  a.histogram = Histogram::Build(za, 64);
  b.histogram = Histogram::Build(zb, 64);
  const double skewed = EstimateThetaSelectivity(a, b, ThetaOp::kEq, 0.0);
  EXPECT_GT(skewed, 2.0 / 200);  // well above the uniform estimate
}

TEST(SelectivityTest, NotEqualIsComplement) {
  const ColumnStats a = MakeUniformStats(0, 100, 50, 16);
  const ColumnStats b = MakeUniformStats(0, 100, 50, 17);
  const double eq = EstimateThetaSelectivity(a, b, ThetaOp::kEq, 0.0);
  const double ne = EstimateThetaSelectivity(a, b, ThetaOp::kNe, 0.0);
  EXPECT_NEAR(eq + ne, 1.0, 1e-9);
}

TEST(SelectivityTest, ConjunctionMultipliesAndClamps) {
  const ColumnStats a = MakeUniformStats(0, 100, 100, 18);
  const ColumnStats b = MakeUniformStats(0, 100, 100, 19);
  TableStats ta, tb;
  ta.logical_rows = tb.logical_rows = 1000;
  ta.columns = {a};
  tb.columns = {b};
  JoinCondition lt{{0, 0}, ThetaOp::kLt, {1, 0}, 0.0, 0};
  JoinCondition gt{{0, 0}, ThetaOp::kGt, {1, 0}, 0.0, 1};
  const double sel =
      EstimateConjunctionSelectivity({lt, gt}, {&ta, &tb});
  EXPECT_NEAR(sel, 0.25, 0.05);
  const double rows = EstimateJoinOutputRows({&ta, &tb}, {lt});
  EXPECT_NEAR(rows, 0.5 * 1000 * 1000, 0.1 * 1000 * 1000);
}

}  // namespace
}  // namespace mrtheta
