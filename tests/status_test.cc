// Status / StatusOr edge cases (docs/STATIC_ANALYSIS.md): the factory
// invariants (WithCode refuses kOk, StatusOr refuses an OK Status), the
// abort-on-misuse contract of value(), and move semantics — the paths a
// dropped-Status bug would travel through. Both classes are [[nodiscard]];
// the deliberate discards below are the sanctioned test-only pattern:
// an explicit (void) cast plus a comment saying what is being dropped.

#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "src/common/status.h"

namespace mrtheta {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_EQ(s, Status::OK());
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  Status s = Status::NotFound("missing relation R");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing relation R");
  EXPECT_NE(s.ToString().find("missing relation R"), std::string::npos);
}

TEST(StatusTest, WithCodeKeepsCodeAndMessage) {
  Status s = Status::WithCode(StatusCode::kDeadlineExceeded, "slow reduce");
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(s.message(), "slow reduce");
  // Re-coding an existing error (the fault layer's cancel translation).
  Status recoded = Status::WithCode(StatusCode::kCancelled, s.message());
  EXPECT_TRUE(recoded.IsCancelled());
  EXPECT_EQ(recoded.message(), "slow reduce");
}

TEST(StatusDeathTest, WithCodeRefusesOk) {
  // An "error" carrying kOk would read as success at every ok() check —
  // the constructor aborts rather than minting one.
  EXPECT_DEATH(
      {
        Status s = Status::WithCode(StatusCode::kOk, "not an error");
        static_cast<void>(s);
      },
      "WithCode");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::Internal("x"), Status::Internal("x"));
  EXPECT_FALSE(Status::Internal("x") == Status::Internal("y"));
  EXPECT_FALSE(Status::Internal("x") == Status::Aborted("x"));
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto inner = [](bool fail) -> Status {
    if (fail) return Status::ResourceExhausted("page pool empty");
    return Status::OK();
  };
  auto outer = [&](bool fail) -> Status {
    MRTHETA_RETURN_IF_ERROR(inner(fail));
    return Status::Internal("reached past the guard");
  };
  EXPECT_EQ(outer(true), Status::ResourceExhausted("page pool empty"));
  EXPECT_EQ(outer(false), Status::Internal("reached past the guard"));
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.status(), Status::OK());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> r = Status::NotFound("no such plan");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, ArrowReachesMembers) {
  StatusOr<std::string> r = std::string("shuffle");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 7u);
}

TEST(StatusOrTest, RvalueValueMovesOut) {
  StatusOr<std::string> r = std::string(256, 'x');
  const char* before = r.value().data();
  std::string moved = *std::move(r);
  // The buffer moved, not copied (same heap allocation).
  EXPECT_EQ(moved.data(), before);
  EXPECT_EQ(moved.size(), 256u);
}

TEST(StatusOrDeathTest, ConstructingFromOkStatusAborts) {
  // StatusOr<T>(Status) is the error path; smuggling an OK through it
  // would create a "successful" result with no value.
  EXPECT_DEATH(
      {
        StatusOr<int> r = Status::OK();
        static_cast<void>(r);
      },
      "OK status");
}

TEST(StatusOrDeathTest, ValueOnErrorAborts) {
  // The NDEBUG-surviving contract: an unchecked error never silently
  // reads the disengaged optional, in any build type.
  StatusOr<int> r = Status::Internal("exec failed");
  EXPECT_DEATH(static_cast<void>(r.value()), "error status");
}

TEST(CheckMacroTest, PassingCheckIsSilent) {
  MRTHETA_CHECK(1 + 1 == 2);
  MRTHETA_DCHECK(1 + 1 == 2);
}

TEST(CheckMacroDeathTest, FailingCheckAborts) {
  EXPECT_DEATH(MRTHETA_CHECK(false && "invariant"), "MRTHETA_CHECK failed");
}

TEST(CheckMacroTest, DcheckMatchesBuildType) {
#ifdef NDEBUG
  // Compiled away — but still parsed, so this line would not build if the
  // expression rotted.
  MRTHETA_DCHECK(false && "dcheck is off in NDEBUG");
#else
  EXPECT_DEATH(MRTHETA_DCHECK(false && "dcheck is on in debug"),
               "MRTHETA_CHECK failed");
#endif
}

}  // namespace
}  // namespace mrtheta
