// Micro-benchmark of the reduce-side join kernels: generic nested loop
// (compiled predicates, no sort) vs the sort-based range-scan kernel, on a
// single-inequality join. Writes BENCH_kernels.json (pass a path to
// override) so the kernel perf trajectory is tracked across PRs.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/exec/theta_kernels.h"
#include "src/relation/column_view.h"

namespace mrtheta::bench {
namespace {

RelationPtr MakeKeyRel(const char* name, int64_t rows, int64_t lo, int64_t hi,
                       uint64_t seed) {
  auto rel =
      std::make_shared<Relation>(name, Schema({{"k", ValueType::kInt64}}));
  Rng rng(seed);
  for (int64_t i = 0; i < rows; ++i) {
    rel->AppendIntRow({rng.UniformInt(lo, hi)});
  }
  return rel;
}

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Measured {
  int64_t wall_ns = 0;
  int64_t pairs = 0;
};

// The generic kernel's inner loop: every pair through the compiled
// predicate (this is what the reducers run when no sort driver applies).
Measured RunGeneric(const JoinCondition& cond, const Relation& lrel,
                    const Relation& rrel) {
  const CompiledPredicate pred =
      CompiledPredicate::Compile(cond, lrel, rrel);
  Measured m;
  const int64_t t0 = NowNs();
  for (int64_t l = 0; l < lrel.num_rows(); ++l) {
    for (int64_t r = 0; r < rrel.num_rows(); ++r) {
      if (pred.Eval(l, r)) ++m.pairs;
    }
  }
  m.wall_ns = NowNs() - t0;
  return m;
}

Measured RunSorted(const JoinCondition& cond, const Relation& lrel,
                   const Relation& rrel) {
  std::vector<int64_t> lrows(lrel.num_rows()), rrows(rrel.num_rows());
  std::iota(lrows.begin(), lrows.end(), 0);
  std::iota(rrows.begin(), rrows.end(), 0);
  Measured m;
  const int64_t t0 = NowNs();
  SortJoinRowSets(cond, lrel, lrows, rrel, rrows,
                  [&](int32_t, int32_t) { ++m.pairs; });
  m.wall_ns = NowNs() - t0;
  return m;
}

KernelBenchRecord Record(const std::string& label, JoinKernel kernel,
                         int64_t lrows, int64_t rrows, const Measured& m) {
  KernelBenchRecord rec;
  rec.label = label;
  rec.kernel = JoinKernelName(kernel);
  rec.left_rows = lrows;
  rec.right_rows = rrows;
  rec.wall_ns = m.wall_ns;
  rec.tuples_per_sec = m.wall_ns > 0
                           ? static_cast<double>(lrows + rrows) * 1e9 /
                                 static_cast<double>(m.wall_ns)
                           : 0.0;
  rec.output_pairs = m.pairs;
  return rec;
}

}  // namespace
}  // namespace mrtheta::bench

int main(int argc, char** argv) {
  using namespace mrtheta;
  using namespace mrtheta::bench;

  const char* path = argc > 1 ? argv[1] : "BENCH_kernels.json";
  std::vector<KernelBenchRecord> records;
  std::printf("%-18s %10s %10s %14s %14s %10s\n", "case", "rows", "pairs",
              "generic_ns", "sort_ns", "speedup");

  bool ok = true;
  for (int64_t n : {2000, 20000}) {
    // Band-style workload: keys mostly disjoint with a narrow overlap
    // window, so the single `<` condition is selective — the regime where
    // the paper's theta joins live and where range pruning pays.
    RelationPtr left = MakeKeyRel("L", n, 0, 1000000, 11);
    RelationPtr right = MakeKeyRel("R", n, -1000000, 10000, 12);
    const JoinCondition cond{{0, 0}, ThetaOp::kLt, {1, 0}, 0.0, 0};

    const Measured gen = RunGeneric(cond, *left, *right);
    const Measured srt = RunSorted(cond, *left, *right);
    if (gen.pairs != srt.pairs) {
      std::fprintf(stderr, "FATAL: kernels disagree (%lld vs %lld pairs)\n",
                   static_cast<long long>(gen.pairs),
                   static_cast<long long>(srt.pairs));
      return 1;
    }
    const double speedup = srt.wall_ns > 0 ? static_cast<double>(gen.wall_ns) /
                                                 static_cast<double>(srt.wall_ns)
                                           : 0.0;
    const std::string label =
        "lt_" + std::to_string(n) + "x" + std::to_string(n);
    records.push_back(Record(label, JoinKernel::kGeneric, n, n, gen));
    records.push_back(Record(label, JoinKernel::kSortTheta, n, n, srt));
    std::printf("%-18s %10lld %10lld %14lld %14lld %9.1fx\n", label.c_str(),
                static_cast<long long>(n), static_cast<long long>(gen.pairs),
                static_cast<long long>(gen.wall_ns),
                static_cast<long long>(srt.wall_ns), speedup);
    // Acceptance bar: >= 5x at 20k x 20k for a single-inequality join.
    if (n == 20000 && speedup < 5.0) ok = false;
  }

  const Status s = WriteBenchJson(path, records);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s\n", path);
  if (!ok) {
    std::fprintf(stderr, "FAIL: sort kernel below 5x at 20k x 20k\n");
    return 1;
  }
  return 0;
}
