#ifndef MRTHETA_BENCH_MOBILE_SUITE_H_
#define MRTHETA_BENCH_MOBILE_SUITE_H_

namespace mrtheta::bench {

/// Runs the Fig. 9 / Fig. 10 harness: mobile Q1..Q4 at 20/100/500 GB with
/// kP processing units, printing one table per query (columns: volume and
/// the four systems' simulated seconds).
int RunMobileSuite(int kp);

/// Runs the Fig. 12 / Fig. 13 harness: TPC-H Q7/Q17/Q18/Q21 at SF
/// 200/500/1000 with kP processing units.
int RunTpchSuite(int kp);

}  // namespace mrtheta::bench

#endif  // MRTHETA_BENCH_MOBILE_SUITE_H_
