// Ablation: Hilbert-curve partitioning vs row-major grid vs random segment
// assignment — partition Score (Eq. 7) and reduce-input balance.
//
// Theorem 2 claims the Hilbert curve is a *perfect* partition function; a
// row-major traversal of the same grid covers dimensions unevenly
// (early segments span entire rows), inflating duplication.

#include <cstdio>
#include <iostream>
#include <vector>

#include "src/common/rng.h"
#include "src/common/table_printer.h"
#include "src/hilbert/hilbert.h"

using namespace mrtheta;  // NOLINT

namespace {

// Score of a partition described by cell -> segment, for uniform slice
// populations over a d-dim grid.
int64_t ScoreOf(const HilbertCurve& curve,
                const std::vector<int>& segment_of_cell, int k,
                int64_t rows_per_relation) {
  const int dims = curve.dims();
  const uint32_t side = curve.side();
  // seen[seg][dim][slice]
  std::vector<std::vector<std::vector<bool>>> seen(
      k, std::vector<std::vector<bool>>(dims,
                                        std::vector<bool>(side, false)));
  std::vector<uint32_t> coords(dims);
  for (uint64_t cell = 0; cell < curve.num_cells(); ++cell) {
    // Cells here are enumerated in row-major order: decode manually.
    uint64_t rest = cell;
    for (int d = dims - 1; d >= 0; --d) {
      coords[d] = static_cast<uint32_t>(rest % side);
      rest /= side;
    }
    const int seg = segment_of_cell[cell];
    for (int d = 0; d < dims; ++d) seen[seg][d][coords[d]] = true;
  }
  int64_t score = 0;
  const int64_t per_slice = rows_per_relation / side;
  for (int seg = 0; seg < k; ++seg) {
    for (int d = 0; d < dims; ++d) {
      for (uint32_t s = 0; s < side; ++s) {
        if (seen[seg][d][s]) score += per_slice;
      }
    }
  }
  return score;
}

}  // namespace

int main() {
  const int dims = 3, order = 3, k = 16;
  const int64_t rows = 1 << 15;
  const auto curve = HilbertCurve::Create(dims, order);
  if (!curve.ok()) return 1;
  const uint64_t cells = curve->num_cells();

  // Hilbert: contiguous curve segments (exact, via SegmentCoverage).
  const auto coverage = SegmentCoverage::Build(*curve, k);
  if (!coverage.ok()) return 1;
  int64_t hilbert_score = 0;
  for (int d = 0; d < dims; ++d) {
    hilbert_score += coverage->ReplicasForUniformRelation(d, rows);
  }

  // Row-major: contiguous ranges of row-major cell order.
  std::vector<int> row_major(cells);
  for (uint64_t c = 0; c < cells; ++c) {
    row_major[c] = static_cast<int>(c * k / cells);
  }
  // Random: each cell assigned to a random segment.
  Rng rng(99);
  std::vector<int> random(cells);
  for (uint64_t c = 0; c < cells; ++c) {
    random[c] = static_cast<int>(rng.Uniform(k));
  }

  TablePrinter table({"partition", "Score (replicas)", "vs hilbert"});
  const int64_t rm = ScoreOf(*curve, row_major, k, rows);
  const int64_t rnd = ScoreOf(*curve, random, k, rows);
  table.AddRow({"hilbert", TablePrinter::Int(hilbert_score), "1.00"});
  table.AddRow({"row-major grid", TablePrinter::Int(rm),
                TablePrinter::Num(static_cast<double>(rm) / hilbert_score,
                                  2)});
  table.AddRow({"random cells", TablePrinter::Int(rnd),
                TablePrinter::Num(static_cast<double>(rnd) / hilbert_score,
                                  2)});
  std::printf(
      "Ablation: partition Score (Eq. 7) of a %d-dim cube, %d segments\n\n",
      dims, k);
  table.Print(std::cout);
  std::printf(
      "\nLower is better; Hilbert's fair traversal (Theorem 2) minimizes\n"
      "tuple duplication among the partition functions tested.\n");
  return 0;
}
