// Ablation: evaluating an inequality chain with one Hilbert MRJ vs a
// cascade of pair-wise 1-Bucket-Theta jobs, sweeping chain length — the
// paper's core observation that single-job evaluation wins when cascades
// must materialize expansive theta intermediates.

#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/common/table_printer.h"
#include "src/workload/flights.h"

using namespace mrtheta;  // NOLINT

int main() {
  bench::Harness harness(96);
  std::printf(
      "Ablation: single Hilbert MRJ vs pairwise cascade on inequality\n"
      "chains (flight itineraries, 1.5 GB per leg)\n\n");
  TablePrinter table({"chain length", "ours (s)", "hive-cascade (s)",
                      "cascade/ours"});

  for (int legs = 2; legs <= 4; ++legs) {
    FlightLegOptions options;
    options.physical_rows = 450;
    options.logical_rows = static_cast<int64_t>(1.5 * kGiB) /
                           28;  // ~1.5 GB per leg table
    std::vector<RelationPtr> tables;
    for (int i = 0; i < legs; ++i) {
      tables.push_back(GenerateFlightLeg(i, options));
    }
    std::vector<StayOver> stays(legs - 1, StayOver{45, 6 * 60});
    const auto query = BuildItineraryQuery(tables, stays);
    if (!query.ok()) return 1;

    const auto ours = bench::RunSystem("ours", *query, harness);
    const auto hive = bench::RunSystem("hive", *query, harness);
    if (!ours.ok() || !hive.ok()) {
      std::fprintf(stderr, "run failed\n");
      return 1;
    }
    table.AddRow({TablePrinter::Int(legs),
                  TablePrinter::Num(ours->seconds, 1),
                  TablePrinter::Num(hive->seconds, 1),
                  TablePrinter::Num(hive->seconds / ours->seconds, 2)});
  }
  table.Print(std::cout);
  std::printf(
      "\nInequality-only chains have no equality keys: the cascade's\n"
      "1-Bucket-Theta steps materialize band-join intermediates that the\n"
      "single Hilbert job never writes.\n");
  return 0;
}
