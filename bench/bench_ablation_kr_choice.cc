// Ablation: how the reduce-task count is chosen (DESIGN.md §4.4) —
// the literal Eq. 10 Δ minimization vs the cost-model sweep vs fixed
// maximum parallelism, evaluated on the Fig. 7(a) self-join at several
// volumes.

#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "src/common/table_printer.h"
#include "src/cost/calibration.h"
#include "src/cost/kr_chooser.h"
#include "src/hilbert/hilbert.h"

using namespace mrtheta;  // NOLINT

int main() {
  SimCluster cluster{ClusterConfig{}};
  const auto calib = CalibrateCostModel(cluster);
  if (!calib.ok()) return 1;
  const int kp = cluster.config().num_workers;

  auto simulate = [&](double gb, int kr) {
    SyntheticJobSpec job;
    job.input_bytes = gb * kGiB;
    job.alpha = ApproxDuplicationFactor(2, kr);  // 2-dim theta pair
    job.num_reduce_tasks = kr;
    job.output_bytes = 0.2 * gb * kGiB;
    const auto timing = RunSyntheticJob(cluster, job);
    return timing.ok() ? ToSeconds(timing->finish - timing->release) : -1.0;
  };

  std::printf(
      "Ablation: kR selection policy (simulated seconds of a 2-relation\n"
      "theta pair; lower is better)\n\n");
  TablePrinter table({"input (GB)", "cost-based kR", "t(cost)",
                      "Eq.10 kR", "t(Eq.10)", "t(kR=max)"});
  for (double gb : {1.0, 10.0, 50.0, 200.0}) {
    // Cost-based: argmin of the fitted model.
    const KrChoice by_cost = ChooseKrByCost(
        calib->params, cluster.config(),
        [&](int k) {
          JobProfile p;
          p.input_bytes = gb * kGiB;
          p.alpha = ApproxDuplicationFactor(2, k);
          p.output_bytes = 0.2 * gb * kGiB;
          p.num_reduce_tasks = k;
          return p;
        },
        kp, kp);
    // Eq. 10 with raw cardinalities (rows ~ bytes / 32).
    const double rows = gb * kGiB / 32.0;
    const std::vector<double> cards = {rows, rows};
    const KrChoice by_delta = ChooseKrByDelta(cards, kp, 0.4);

    table.AddRow({TablePrinter::Num(gb, 0),
                  TablePrinter::Int(by_cost.kr),
                  TablePrinter::Num(simulate(gb, by_cost.kr), 1),
                  TablePrinter::Int(by_delta.kr),
                  TablePrinter::Num(simulate(gb, by_delta.kr), 1),
                  TablePrinter::Num(simulate(gb, kp), 1)});
  }
  table.Print(std::cout);
  std::printf(
      "\nEq. 10 with raw cardinalities saturates at the cap (its workload\n"
      "term dominates at scale); the cost-based sweep finds the interior\n"
      "optimum, which is why the planner defaults to it.\n");
  return 0;
}
