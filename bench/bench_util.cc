#include "bench/bench_util.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

#include "src/baselines/baseline_planners.h"

namespace mrtheta::bench {

namespace {

EngineOptions OptionsFor(int kp, int num_threads) {
  EngineOptions options;
  options.cluster.num_workers = kp;
  options.executor.num_threads = num_threads;
  // Calibration probes need one free map wave; the engine runs them on a
  // 96-wide calibration cluster (the model parameters are kP-independent).
  options.calibration_workers = 96;
  return options;
}

}  // namespace

Harness::Harness(int kp, int num_threads)
    : engine(OptionsFor(kp, num_threads)), cluster(engine.cluster()) {
  StatusOr<CalibrationReport> report = engine.Calibration();
  if (!report.ok()) {
    std::fprintf(stderr, "calibration failed: %s\n",
                 report.status().ToString().c_str());
    std::exit(1);
  }
  params = report->params;
}

StatusOr<SystemResult> RunSystem(const std::string& system,
                                 const Query& query, Harness& harness,
                                 uint64_t seed) {
  StatusOr<QueryPlan> plan = Status::Internal("unknown system");
  if (system == "ours") {
    plan = harness.engine.PlanQuery(query);
  } else if (system == "ysmart") {
    plan = PlanYSmartStyle(query, harness.cluster);
  } else if (system == "hive") {
    plan = PlanHiveStyle(query, harness.cluster);
  } else if (system == "pig") {
    plan = PlanPigStyle(query, harness.cluster);
  }
  if (!plan.ok()) return plan.status();
  StatusOr<QueryResult> result = harness.engine.ExecutePlan(
      query, *plan, harness.engine.options().executor, seed);
  if (!result.ok()) return result.status();
  SystemResult out;
  out.system = system;
  out.seconds = result->simulated_seconds();
  out.jobs = static_cast<int>(plan->jobs.size());
  out.result_rows_physical = result->num_rows();
  out.result_selectivity = result->selectivity();
  return out;
}

namespace {

// Writes a JSON array of pre-formatted object lines (no trailing commas).
Status WriteJsonArray(const std::string& path,
                      const std::vector<std::string>& lines) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open " + path + " for writing");
  }
  std::fprintf(f, "[\n");
  for (size_t i = 0; i < lines.size(); ++i) {
    std::fprintf(f, "  %s%s\n", lines[i].c_str(),
                 i + 1 < lines.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  const bool write_error = std::ferror(f) != 0;
  if (std::fclose(f) != 0 || write_error) {
    return Status::Internal("failed writing " + path);
  }
  return Status::OK();
}

std::string FormatLine(const char* fmt, ...) {
  char buf[1024];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  return buf;
}

}  // namespace

Status WriteBenchJson(const std::string& path,
                      const std::vector<KernelBenchRecord>& records) {
  std::vector<std::string> lines;
  lines.reserve(records.size());
  for (const KernelBenchRecord& r : records) {
    lines.push_back(FormatLine(
        "{\"label\": \"%s\", \"kernel\": \"%s\", "
        "\"left_rows\": %lld, \"right_rows\": %lld, "
        "\"wall_ns\": %lld, \"tuples_per_sec\": %.1f, "
        "\"output_pairs\": %lld}",
        r.label.c_str(), r.kernel.c_str(),
        static_cast<long long>(r.left_rows),
        static_cast<long long>(r.right_rows),
        static_cast<long long>(r.wall_ns), r.tuples_per_sec,
        static_cast<long long>(r.output_pairs)));
  }
  return WriteJsonArray(path, lines);
}

Status WriteRuntimeBenchJson(const std::string& path,
                             const std::vector<RuntimeBenchRecord>& records) {
  std::vector<std::string> lines;
  lines.reserve(records.size());
  for (const RuntimeBenchRecord& r : records) {
    lines.push_back(FormatLine(
        "{\"workload\": \"%s\", \"query\": \"%s\", "
        "\"threads\": %d, \"hardware_threads\": %d, "
        "\"jobs\": %d, \"wall_seconds\": %.6f, "
        "\"speedup_vs_1t\": %.3f, "
        "\"sim_makespan_seconds\": %.3f, "
        "\"sim_shuffle_bytes\": %lld, "
        "\"result_rows_physical\": %lld, "
        "\"sort_kernel_min_pairs\": %lld, "
        "\"trace_overhead\": %.4f, "
        "\"peak_mem_bytes\": %lld, \"spill_bytes\": %lld}",
        r.workload.c_str(), r.query.c_str(), r.threads, r.hardware_threads,
        r.jobs, r.wall_seconds, r.speedup_vs_1t, r.sim_makespan_seconds,
        static_cast<long long>(r.sim_shuffle_bytes),
        static_cast<long long>(r.result_rows_physical),
        static_cast<long long>(r.sort_kernel_min_pairs), r.trace_overhead,
        static_cast<long long>(r.peak_mem_bytes),
        static_cast<long long>(r.spill_bytes)));
  }
  return WriteJsonArray(path, lines);
}

Status WriteMemBenchJson(const std::string& path,
                         const std::vector<MemBenchRecord>& records) {
  std::vector<std::string> lines;
  lines.reserve(records.size());
  for (const MemBenchRecord& r : records) {
    lines.push_back(FormatLine(
        "{\"workload\": \"%s\", \"query\": \"%s\", \"mode\": \"%s\", "
        "\"threads\": %d, \"mem_budget_bytes\": %lld, "
        "\"jobs\": %d, \"wall_seconds\": %.6f, "
        "\"sim_makespan_seconds\": %.3f, "
        "\"sim_shuffle_bytes\": %lld, "
        "\"result_rows_physical\": %lld, "
        "\"spill_bytes\": %lld, \"spill_files\": %lld, "
        "\"peak_mem_bytes\": %lld}",
        r.workload.c_str(), r.query.c_str(), r.mode.c_str(), r.threads,
        static_cast<long long>(r.mem_budget_bytes), r.jobs, r.wall_seconds,
        r.sim_makespan_seconds, static_cast<long long>(r.sim_shuffle_bytes),
        static_cast<long long>(r.result_rows_physical),
        static_cast<long long>(r.spill_bytes),
        static_cast<long long>(r.spill_files),
        static_cast<long long>(r.peak_mem_bytes)));
  }
  return WriteJsonArray(path, lines);
}

uint64_t OrderedRowsFingerprint(const Relation& rows) {
  uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](const std::string& s) {
    for (unsigned char c : s) {
      h ^= c;
      h *= 1099511628211ULL;
    }
    h ^= '|';
    h *= 1099511628211ULL;
  };
  for (int64_t r = 0; r < rows.num_rows(); ++r) {
    for (int c = 0; c < rows.schema().num_columns(); ++c) {
      mix(rows.Get(r, c).ToString());
    }
  }
  return h;
}

Status WriteServeBenchJson(const std::string& path,
                           const std::vector<ServeBenchRecord>& records) {
  std::vector<std::string> lines;
  lines.reserve(records.size());
  for (const ServeBenchRecord& r : records) {
    lines.push_back(FormatLine(
        "{\"workload\": \"%s\", \"query\": \"%s\", "
        "\"streams\": %d, \"queries_per_stream\": %d, "
        "\"total_queries\": %d, \"threads\": %d, "
        "\"per_query_threads\": %d, \"max_inflight_queries\": %d, "
        "\"hardware_threads\": %d, "
        "\"p50_latency_seconds\": %.6f, \"p99_latency_seconds\": %.6f, "
        "\"throughput_qps\": %.3f, \"wall_seconds\": %.6f, "
        "\"plan_cache_hits\": %lld, \"plan_cache_misses\": %lld, "
        "\"admission_rejections\": %lld, \"result_rows_total\": %lld}",
        r.workload.c_str(), r.query.c_str(), r.streams,
        r.queries_per_stream, r.total_queries, r.threads,
        r.per_query_threads, r.max_inflight_queries, r.hardware_threads,
        r.p50_latency_seconds, r.p99_latency_seconds, r.throughput_qps,
        r.wall_seconds, static_cast<long long>(r.plan_cache_hits),
        static_cast<long long>(r.plan_cache_misses),
        static_cast<long long>(r.admission_rejections),
        static_cast<long long>(r.result_rows_total)));
  }
  return WriteJsonArray(path, lines);
}

Status WriteSkewBenchJson(const std::string& path,
                          const std::vector<SkewBenchRecord>& records) {
  std::vector<std::string> lines;
  lines.reserve(records.size());
  for (const SkewBenchRecord& r : records) {
    lines.push_back(FormatLine(
        "{\"workload\": \"%s\", \"query\": \"%s\", \"mode\": \"%s\", "
        "\"zipf_exponent\": %.2f, \"reduce_tasks\": %d, "
        "\"residual_tasks\": %d, \"heavy_tasks\": %d, "
        "\"heavy_groups\": %d, \"max_reduce_input_bytes\": %lld, "
        "\"mean_reduce_input_bytes\": %.1f, \"max_mean_ratio\": %.3f, "
        "\"result_rows_physical\": %lld, "
        "\"sim_makespan_seconds\": %.3f, \"wall_seconds\": %.6f}",
        r.workload.c_str(), r.query.c_str(), r.mode.c_str(),
        r.zipf_exponent, r.reduce_tasks, r.residual_tasks, r.heavy_tasks,
        r.heavy_groups, static_cast<long long>(r.max_reduce_input_bytes),
        r.mean_reduce_input_bytes, r.max_mean_ratio,
        static_cast<long long>(r.result_rows_physical),
        r.sim_makespan_seconds, r.wall_seconds));
  }
  return WriteJsonArray(path, lines);
}

std::vector<SystemResult> RunAllSystems(const Query& query, Harness& harness,
                                        uint64_t seed) {
  std::vector<SystemResult> results;
  for (const char* system : {"ours", "ysmart", "hive", "pig"}) {
    StatusOr<SystemResult> r = RunSystem(system, query, harness, seed);
    if (!r.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", system,
                   r.status().ToString().c_str());
      std::exit(1);
    }
    results.push_back(*std::move(r));
  }
  return results;
}

}  // namespace mrtheta::bench
