// Measured (not simulated) end-to-end scaling of the in-process runtime:
// executes full query plans on the TPC-H, flights and mobile workloads at
// 1/2/4/8 threads and reports wall-clock speedup over the single-threaded
// reference runner, plus a sweep of the sort-kernel min-pairs gate and the
// session-reuse figure (cold single-shot vs warm engine caches).
//
// The simulated makespan and the physical result rows are recorded as
// correctness anchors: both must be identical at every thread count (the
// runtime's determinism contract, see docs/RUNTIME.md). The process aborts
// if they are not.
//
// The whole bench drives ONE ThetaEngine session (docs/API.md): plans come
// from the engine's cached calibration/statistics, executions run on the
// engine's shared pool with per-call executor overrides.
//
// Every record carries sim_shuffle_bytes (the deterministic map→reduce
// volume, the paper's cost objective). The "prune" workload executes the
// TPC-H Q17 plan with and without its required-column annotation on the
// same engine and asserts the column-pruning contract: byte-identical
// projected rows, with pruned shuffle volume at most 75% of full-width
// (docs/EXECUTOR.md "Column pruning"). --no-prune plans everything
// full-width instead (the ablation; the assertion is skipped).
//
// Usage: bench_runtime [--no-prune] [--trace-out=F] [--metrics-out=F]
//                      [output.json]

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/api/theta_engine.h"
#include "src/baselines/baseline_planners.h"
#include "src/common/flags.h"
#include "src/common/rng.h"
#include "src/exec/theta_kernels.h"
#include "src/mem/memory_budget.h"
#include "src/obs/obs_export.h"
#include "src/workload/flights.h"
#include "src/workload/mobile.h"
#include "src/workload/tpch.h"

namespace mrtheta::bench {
namespace {

constexpr int kThreadSteps[] = {1, 2, 4, 8};
constexpr int kMaxThreads = 8;

struct PlannedQuery {
  std::string workload;
  std::string name;
  Query query;
  QueryPlan plan;
};

void RunScalingCurve(const PlannedQuery& pq, ThetaEngine& engine,
                     std::vector<RuntimeBenchRecord>& records) {
  double base_wall = 0.0;
  SimTime base_makespan = 0;
  int64_t base_rows = -1;
  for (int threads : kThreadSteps) {
    ExecutorOptions options = engine.options().executor;
    options.num_threads = threads;
    // peak_mem_bytes is a process-wide high-water mark; reset per run so
    // every record reports its own execution's peak (docs/MEMORY.md).
    MemoryBudget::Global().ResetPeak();
    const auto result = engine.ExecutePlan(pq.query, pq.plan, options,
                                           engine.options().execution_seed);
    if (!result.ok()) {
      std::fprintf(stderr, "%s/%s failed at %d threads: %s\n",
                   pq.workload.c_str(), pq.name.c_str(), threads,
                   result.status().ToString().c_str());
      std::exit(1);
    }
    // Physical execution only — excludes the thread-count-invariant
    // simulation replay and final projection.
    const double wall = result->measured_seconds();
    if (threads == 1) {
      base_wall = wall;
      base_makespan = result->makespan();
      base_rows = result->num_rows();
    } else if (result->makespan() != base_makespan ||
               result->num_rows() != base_rows) {
      std::fprintf(stderr,
                   "%s/%s: determinism violation at %d threads "
                   "(makespan %lld vs %lld, rows %lld vs %lld)\n",
                   pq.workload.c_str(), pq.name.c_str(), threads,
                   static_cast<long long>(result->makespan()),
                   static_cast<long long>(base_makespan),
                   static_cast<long long>(result->num_rows()),
                   static_cast<long long>(base_rows));
      std::exit(1);
    }
    RuntimeBenchRecord rec;
    rec.workload = pq.workload;
    rec.query = pq.name;
    rec.threads = threads;
    rec.hardware_threads =
        static_cast<int>(std::thread::hardware_concurrency());
    rec.jobs = static_cast<int>(pq.plan.jobs.size());
    rec.wall_seconds = wall;
    rec.speedup_vs_1t = wall > 0.0 ? base_wall / wall : 1.0;
    rec.sim_makespan_seconds = result->simulated_seconds();
    rec.sim_shuffle_bytes = result->sim_shuffle_bytes();
    rec.result_rows_physical = result->num_rows();
    rec.sort_kernel_min_pairs = kSortKernelMinPairs;
    rec.peak_mem_bytes = result->execution().peak_mem_bytes;
    rec.spill_bytes = result->execution().spill_bytes;
    records.push_back(rec);
    std::printf("  %-8s %-10s threads=%d  wall=%7.3fs  speedup=%5.2fx  "
                "rows=%lld\n",
                pq.workload.c_str(), pq.name.c_str(), threads, wall,
                rec.speedup_vs_1t,
                static_cast<long long>(rec.result_rows_physical));
    std::fflush(stdout);
  }
}

// Session-reuse figure (docs/API.md): latency of the very first query on a
// cold engine (pays calibration + statistics + planning, i.e. the legacy
// single-shot pipeline) vs the same query again with warm session caches.
// Must run before anything else touches the engine. Both records carry
// identical deterministic fields — only wall_seconds (measured; exempt
// from the CI gate) differs.
void RunEngineReuse(ThetaEngine& engine,
                    std::vector<RuntimeBenchRecord>& records) {
  MobileDataOptions options;
  options.physical_rows = 1500;
  options.logical_bytes = 2 * kGiB;
  const auto query = BuildMobileQuery(1, options);
  if (!query.ok()) std::exit(1);

  double cold_wall = 0.0;
  for (const char* phase : {"cold", "warm"}) {
    MemoryBudget::Global().ResetPeak();
    const auto start = std::chrono::steady_clock::now();
    const auto result = engine.Execute(*query);
    const double wall = SecondsSince(start);
    if (!result.ok()) {
      std::fprintf(stderr, "engine_reuse %s failed: %s\n", phase,
                   result.status().ToString().c_str());
      std::exit(1);
    }
    RuntimeBenchRecord rec;
    rec.workload = "engine_reuse";
    rec.query = phase;
    rec.threads = engine.options().executor.num_threads;
    rec.hardware_threads =
        static_cast<int>(std::thread::hardware_concurrency());
    rec.jobs = static_cast<int>(result->jobs().size());
    rec.wall_seconds = wall;  // whole call: plan + execute (+ calibration)
    if (cold_wall == 0.0) cold_wall = wall;
    rec.speedup_vs_1t = wall > 0.0 ? cold_wall / wall : 1.0;
    rec.sim_makespan_seconds = result->simulated_seconds();
    rec.sim_shuffle_bytes = result->sim_shuffle_bytes();
    rec.result_rows_physical = result->num_rows();
    rec.sort_kernel_min_pairs = kSortKernelMinPairs;
    rec.peak_mem_bytes = result->execution().peak_mem_bytes;
    rec.spill_bytes = result->execution().spill_bytes;
    records.push_back(rec);
    std::printf("  %-8s %-10s threads=%d  wall=%7.3fs  speedup=%5.2fx  "
                "rows=%lld\n",
                rec.workload.c_str(), phase, rec.threads, wall,
                rec.speedup_vs_1t,
                static_cast<long long>(rec.result_rows_physical));
    std::fflush(stdout);
  }
  const EngineMetrics metrics = engine.metrics();
  if (metrics.calibrations != 1) {
    std::fprintf(stderr, "engine_reuse: expected 1 calibration, got %lld\n",
                 static_cast<long long>(metrics.calibrations));
    std::exit(1);
  }
  // Reuse must actually happen, not just be cheap: the warm run has to
  // serve the cold run's plan from the session plan cache, i.e. the
  // planner ran exactly once and the second Execute was a cache hit.
  // (Deterministic counters, not wall-clock ratios — a warm ≈ cold figure
  // with zero hits is the regression this guards against.)
  if (metrics.plan_cache_hits < 1 || metrics.plans != 1) {
    std::fprintf(stderr,
                 "engine_reuse: warm run did not reuse the cold plan "
                 "(plan_cache_hits=%lld, plans=%lld)\n",
                 static_cast<long long>(metrics.plan_cache_hits),
                 static_cast<long long>(metrics.plans));
    std::exit(1);
  }
}

// Column-pruning ablation (docs/EXECUTOR.md): the SAME Q17 plan executed
// with its required-column annotation vs stripped to full-width. Rids,
// partitioning and row order are untouched by the annotation, so the
// projected outputs must be byte-identical while the simulated shuffle
// volume shrinks — asserted at >= 25% for this workload (lineitem carries
// 8 columns, the query touches 3). With --no-prune the engine planned
// full-width everywhere and this comparison is skipped.
void RunPruneComparison(const Query& query, const QueryPlan& plan,
                        ThetaEngine& engine,
                        std::vector<RuntimeBenchRecord>& records) {
  QueryPlan full_width = plan;
  for (PlanJob& job : full_width.jobs) job.output_columns.clear();

  uint64_t fingerprints[2] = {0, 0};
  const QueryPlan* variants[2] = {&plan, &full_width};
  const char* names[2] = {"q17_pruned", "q17_fullwidth"};
  int64_t shuffle[2] = {0, 0};
  for (int v = 0; v < 2; ++v) {
    MemoryBudget::Global().ResetPeak();
    const auto start = std::chrono::steady_clock::now();
    const auto result = engine.ExecutePlan(query, *variants[v]);
    if (!result.ok()) {
      std::fprintf(stderr, "prune comparison %s failed: %s\n", names[v],
                   result.status().ToString().c_str());
      std::exit(1);
    }
    fingerprints[v] = OrderedRowsFingerprint(result->rows());
    shuffle[v] = result->sim_shuffle_bytes();
    RuntimeBenchRecord rec;
    rec.workload = "prune";
    rec.query = names[v];
    rec.threads = engine.options().executor.num_threads;
    rec.hardware_threads =
        static_cast<int>(std::thread::hardware_concurrency());
    rec.jobs = static_cast<int>(plan.jobs.size());
    rec.wall_seconds = SecondsSince(start);
    rec.sim_makespan_seconds = result->simulated_seconds();
    rec.sim_shuffle_bytes = result->sim_shuffle_bytes();
    rec.result_rows_physical = result->num_rows();
    rec.sort_kernel_min_pairs = kSortKernelMinPairs;
    rec.peak_mem_bytes = result->execution().peak_mem_bytes;
    rec.spill_bytes = result->execution().spill_bytes;
    records.push_back(rec);
    std::printf("  %-8s %-14s shuffle=%lld B  sim=%7.1fs  rows=%lld\n",
                rec.workload.c_str(), names[v],
                static_cast<long long>(rec.sim_shuffle_bytes),
                rec.sim_makespan_seconds,
                static_cast<long long>(rec.result_rows_physical));
    std::fflush(stdout);
  }
  if (fingerprints[0] != fingerprints[1]) {
    std::fprintf(stderr,
                 "prune comparison: projected results differ "
                 "(%llx vs %llx) — pruning must not change rows\n",
                 static_cast<unsigned long long>(fingerprints[0]),
                 static_cast<unsigned long long>(fingerprints[1]));
    std::exit(1);
  }
  if (shuffle[0] > (shuffle[1] * 3) / 4) {
    std::fprintf(stderr,
                 "prune comparison: expected >= 25%% shuffle-byte drop, got "
                 "%lld (pruned) vs %lld (full-width)\n",
                 static_cast<long long>(shuffle[0]),
                 static_cast<long long>(shuffle[1]));
    std::exit(1);
  }
  std::printf("  prune    q17 shuffle drop: %.1f%%\n",
              100.0 * (1.0 - static_cast<double>(shuffle[0]) /
                                 static_cast<double>(shuffle[1])));
}

// Cost of the fault-tolerant execution path when nothing actually fails:
// the SAME Q17 plan with the chaos machinery disabled ("q17_off") vs an
// armed zero-rate FaultPlan ("q17_armed" — retry wrappers, injector
// consultation, per-task commit buffers, all live but never firing).
// Outputs and simulated metrics must be byte-identical — the process
// aborts otherwise — so both records carry the same deterministic fields
// and check_bench.py holds them to a tight per-workload tolerance
// (docs/RUNTIME.md "Fault tolerance"). The wall-clock overhead itself is
// printed but, like all measured times, exempt from the gate.
void RunFaultOverhead(const Query& query, const QueryPlan& plan,
                      ThetaEngine& engine,
                      std::vector<RuntimeBenchRecord>& records) {
  uint64_t fingerprints[2] = {0, 0};
  SimTime makespans[2] = {0, 0};
  double walls[2] = {0.0, 0.0};
  const char* names[2] = {"q17_off", "q17_armed"};
  for (int v = 0; v < 2; ++v) {
    ExecutorOptions options = engine.options().executor;
    options.num_threads = kMaxThreads;
    options.fault_plan = FaultPlan{};  // env-independent: explicit plans
    options.fault_plan.armed = v == 1;
    MemoryBudget::Global().ResetPeak();
    const auto result = engine.ExecutePlan(query, plan, options,
                                           engine.options().execution_seed);
    if (!result.ok()) {
      std::fprintf(stderr, "fault_overhead %s failed: %s\n", names[v],
                   result.status().ToString().c_str());
      std::exit(1);
    }
    fingerprints[v] = OrderedRowsFingerprint(result->rows());
    makespans[v] = result->makespan();
    walls[v] = result->measured_seconds();
    RuntimeBenchRecord rec;
    rec.workload = "fault_overhead";
    rec.query = names[v];
    rec.threads = kMaxThreads;
    rec.hardware_threads =
        static_cast<int>(std::thread::hardware_concurrency());
    rec.jobs = static_cast<int>(plan.jobs.size());
    rec.wall_seconds = walls[v];
    rec.sim_makespan_seconds = result->simulated_seconds();
    rec.sim_shuffle_bytes = result->sim_shuffle_bytes();
    rec.result_rows_physical = result->num_rows();
    rec.sort_kernel_min_pairs = kSortKernelMinPairs;
    rec.peak_mem_bytes = result->execution().peak_mem_bytes;
    rec.spill_bytes = result->execution().spill_bytes;
    records.push_back(rec);
    std::printf("  %-8s %-10s wall=%7.3fs  rows=%lld\n", rec.workload.c_str(),
                names[v], walls[v],
                static_cast<long long>(rec.result_rows_physical));
    std::fflush(stdout);
  }
  if (fingerprints[0] != fingerprints[1] || makespans[0] != makespans[1]) {
    std::fprintf(stderr,
                 "fault_overhead: armed zero-rate run diverged from the "
                 "plain run (fingerprint %llx vs %llx, makespan %lld vs "
                 "%lld) — the chaos path must be invisible when no fault "
                 "fires\n",
                 static_cast<unsigned long long>(fingerprints[0]),
                 static_cast<unsigned long long>(fingerprints[1]),
                 static_cast<long long>(makespans[0]),
                 static_cast<long long>(makespans[1]));
    std::exit(1);
  }
  if (walls[0] > 0.0) {
    std::printf("  fault_overhead q17 armed-path overhead: %+.1f%%\n",
                100.0 * (walls[1] / walls[0] - 1.0));
  }
}

// Cost of span tracing on a hot execution path: the SAME Q17 plan with
// tracing disabled ("q17_untraced") vs a live TraceSession collecting
// every span ("q17_traced"). Outputs and simulated metrics must be
// byte-identical — tracing only observes, it must not perturb one bit
// (docs/OBSERVABILITY.md) — and the min-of-reps wall overhead must stay
// under 3%. Both are hard failures. trace_overhead lands in both records
// so check_bench.py can refuse a BENCH file that stops emitting it.
//
// The overhead gate carries an absolute floor: on this ~40ms workload the
// true span cost is ~30us/run (95 spans x ~300ns), i.e. < 0.1% — while
// shared-runner noise on identical code paths routinely exceeds 3%
// relative (the fault_overhead pair shows it). Failing needs BOTH >3%
// relative AND >2ms absolute, which only a real per-task/per-row
// instrumentation regression can produce.
void RunTraceOverhead(const Query& query, const QueryPlan& plan,
                      ThetaEngine& engine,
                      std::vector<RuntimeBenchRecord>& records) {
  constexpr int kReps = 9;
  constexpr double kMaxOverhead = 0.03;
  constexpr double kMinAbsoluteSlowdownSeconds = 0.002;
  // A session opened by --trace-out is already measuring every variant;
  // nesting another session is not allowed, so the comparison would be
  // traced-vs-traced noise. Skip it (the flag run is for artifact export).
  if (Tracer::active() != nullptr) {
    std::printf("  trace_overhead skipped: a --trace-out session is open\n");
    return;
  }
  Tracer tracer;
  uint64_t fingerprints[2] = {0, 0};
  SimTime makespans[2] = {0, 0};
  double walls[2] = {0.0, 0.0};
  int64_t shuffle[2] = {0, 0};
  double sims[2] = {0.0, 0.0};
  int64_t rows[2] = {0, 0};
  int64_t peaks[2] = {0, 0};
  int64_t spills[2] = {0, 0};
  const char* names[2] = {"q17_untraced", "q17_traced"};
  // Variants are interleaved per rep so slow machine drift (thermal,
  // co-tenant load) hits both equally; min-of-reps then discards the
  // transient spikes that remain.
  ExecutorOptions options = engine.options().executor;
  options.num_threads = kMaxThreads;
  for (int rep = 0; rep < kReps; ++rep) {
    for (int v = 0; v < 2; ++v) {
      std::optional<TraceSession> session;
      if (v == 1) session.emplace(&tracer);
      MemoryBudget::Global().ResetPeak();
      const auto result = engine.ExecutePlan(query, plan, options,
                                             engine.options().execution_seed);
      if (!result.ok()) {
        std::fprintf(stderr, "trace_overhead %s failed: %s\n", names[v],
                     result.status().ToString().c_str());
        std::exit(1);
      }
      if (rep == 0) {
        fingerprints[v] = OrderedRowsFingerprint(result->rows());
        makespans[v] = result->makespan();
        shuffle[v] = result->sim_shuffle_bytes();
        sims[v] = result->simulated_seconds();
        rows[v] = result->num_rows();
        peaks[v] = result->execution().peak_mem_bytes;
        spills[v] = result->execution().spill_bytes;
      }
      const double wall = result->measured_seconds();
      if (rep == 0 || wall < walls[v]) walls[v] = wall;
    }
  }
  if (fingerprints[0] != fingerprints[1] || makespans[0] != makespans[1]) {
    std::fprintf(stderr,
                 "trace_overhead: traced run diverged from the untraced run "
                 "(fingerprint %llx vs %llx, makespan %lld vs %lld) — "
                 "tracing must not perturb the execution\n",
                 static_cast<unsigned long long>(fingerprints[0]),
                 static_cast<unsigned long long>(fingerprints[1]),
                 static_cast<long long>(makespans[0]),
                 static_cast<long long>(makespans[1]));
    std::exit(1);
  }
  const double overhead =
      walls[0] > 0.0 ? walls[1] / walls[0] - 1.0 : 0.0;
  for (int v = 0; v < 2; ++v) {
    RuntimeBenchRecord rec;
    rec.workload = "trace_overhead";
    rec.query = names[v];
    rec.threads = kMaxThreads;
    rec.hardware_threads =
        static_cast<int>(std::thread::hardware_concurrency());
    rec.jobs = static_cast<int>(plan.jobs.size());
    rec.wall_seconds = walls[v];
    rec.sim_makespan_seconds = sims[v];
    rec.sim_shuffle_bytes = shuffle[v];
    rec.result_rows_physical = rows[v];
    rec.sort_kernel_min_pairs = kSortKernelMinPairs;
    rec.trace_overhead = overhead;
    rec.peak_mem_bytes = peaks[v];
    rec.spill_bytes = spills[v];
    records.push_back(rec);
    std::printf("  %-8s %-13s wall=%7.3fs (min of %d)  rows=%lld\n",
                rec.workload.c_str(), names[v], walls[v], kReps,
                static_cast<long long>(rec.result_rows_physical));
    std::fflush(stdout);
  }
  std::printf("  trace_overhead q17 traced-path overhead: %+.1f%% "
              "(%zu spans/run)\n",
              100.0 * overhead, tracer.num_events() / kReps);
  if (overhead > kMaxOverhead &&
      walls[1] - walls[0] > kMinAbsoluteSlowdownSeconds) {
    std::fprintf(stderr,
                 "trace_overhead: %.1f%% (%.1fms) wall overhead exceeds "
                 "the %.0f%% budget (min of %d reps)\n",
                 100.0 * overhead, 1000.0 * (walls[1] - walls[0]),
                 100.0 * kMaxOverhead, kReps);
    std::exit(1);
  }
}

// Sweeps the sort-kernel min-pairs gate (satellite knob of
// ExecutorOptions) over a pairwise-join cascade, where the gate decides
// per reduce group between the sort kernel and the nested loop.
void RunGateSweep(const Query& query, const QueryPlan& plan,
                  ThetaEngine& engine,
                  std::vector<RuntimeBenchRecord>& records) {
  for (int64_t gate :
       {int64_t{1}, int64_t{64}, kSortKernelMinPairs, int64_t{4096},
        int64_t{1} << 62}) {
    ExecutorOptions options = engine.options().executor;
    options.num_threads = kMaxThreads;
    options.sort_kernel_min_pairs = gate;
    MemoryBudget::Global().ResetPeak();
    const auto result = engine.ExecutePlan(query, plan, options,
                                           engine.options().execution_seed);
    if (!result.ok()) {
      std::fprintf(stderr, "gate sweep failed: %s\n",
                   result.status().ToString().c_str());
      std::exit(1);
    }
    const double wall = result->measured_seconds();
    RuntimeBenchRecord rec;
    rec.workload = "gate-sweep";
    rec.query = "tpch_q17_hive";
    rec.threads = kMaxThreads;
    rec.hardware_threads =
        static_cast<int>(std::thread::hardware_concurrency());
    rec.jobs = static_cast<int>(plan.jobs.size());
    rec.wall_seconds = wall;
    rec.sim_makespan_seconds = result->simulated_seconds();
    rec.sim_shuffle_bytes = result->sim_shuffle_bytes();
    rec.result_rows_physical = result->num_rows();
    rec.sort_kernel_min_pairs = gate;
    rec.peak_mem_bytes = result->execution().peak_mem_bytes;
    rec.spill_bytes = result->execution().spill_bytes;
    records.push_back(rec);
    std::printf("  gate-sweep min_pairs=%-12lld wall=%7.3fs  rows=%lld\n",
                static_cast<long long>(gate), wall,
                static_cast<long long>(rec.result_rows_physical));
    std::fflush(stdout);
  }
}

// Bounded-memory shuffle figure (docs/MEMORY.md): a 40k x 40k equi-join —
// 10x the mobile q1_4k physical scale — executed unbudgeted and under a
// tight --mem-budget-style ExecutorOptions override, at 1 and 4 threads
// each. Three hard contracts, the process aborts on violation:
//
//   1. all four runs produce byte-identical projected rows and the same
//      simulated makespan (the budget is invisible to results);
//   2. every budgeted run actually spills (spill_bytes > 0) — a budget
//      the workload never reaches would gate nothing;
//   3. the budgeted peak stays within kMemPeakSlack x the budget. "Flat"
//      is 1.25x, not 1.0x: the budget is a spill trigger, so in-use
//      memory legitimately overshoots by the page/run granularity plus
//      the reduce-side merge working set before spilling catches up.
//
// The four records land in their own BENCH_mem.json; check_bench.py gates
// peak_mem_bytes and spill_bytes direction-aware against the committed
// baseline.
void RunMemBudget(ThetaEngine& engine, const std::string& out_path) {
  constexpr int64_t kMemRows = 125000;     // per side; mobile q1_4k is 4000
  constexpr int64_t kMemKeyRange = 20000;  // ~780k joined pairs
  constexpr int64_t kMemBudget = 6 * 1024 * 1024;
  constexpr double kMemPeakSlack = 1.25;

  auto make_side = [&](const char* name, uint64_t seed) {
    auto rel = std::make_shared<Relation>(
        name, Schema({{"a", ValueType::kInt64}, {"b", ValueType::kInt64}}));
    Rng rng(seed);
    for (int64_t i = 0; i < kMemRows; ++i) {
      rel->AppendIntRow({static_cast<int64_t>(rng.Uniform(kMemKeyRange)),
                         static_cast<int64_t>(rng.Uniform(1 << 20))});
    }
    return rel;
  };
  QueryBuilder builder;
  builder.From("l", make_side("mem_l", 9101))
      .From("r", make_side("mem_r", 9102))
      .Where(Col("l.a") == Col("r.a"))
      .Select("l.b")
      .Select("r.b");
  const auto query = builder.Build();
  if (!query.ok()) {
    std::fprintf(stderr, "mem_budget query: %s\n",
                 query.status().ToString().c_str());
    std::exit(1);
  }
  const auto plan = engine.PlanQuery(*query);
  if (!plan.ok()) {
    std::fprintf(stderr, "mem_budget plan: %s\n",
                 plan.status().ToString().c_str());
    std::exit(1);
  }
  // The planner sizes RN(MRJ) for the tiny physical sample (RN <= 4 here),
  // which makes ONE reduce task's merge working set comparable to the whole
  // budget — no budget can keep peak flat when a single indivisible task
  // needs most of it. Pin a cluster-realistic fan-out instead. 128 reduce
  // tasks balance the two overheads that bound peak above the budget: the
  // per-task merge working set (~ shuffle_bytes / RN per in-flight task,
  // favors large RN) and the spool's unspillable floor of
  // RN * kMinSpillRecords records (favors small RN). All four runs execute
  // this same plan, so the determinism contract is unchanged.
  QueryPlan mem_plan = *plan;
  for (PlanJob& job : mem_plan.jobs) job.num_reduce_tasks = 128;

  std::vector<MemBenchRecord> records;
  uint64_t ref_fingerprint = 0;
  SimTime ref_makespan = 0;
  for (int budgeted = 0; budgeted <= 1; ++budgeted) {
    for (int threads : {1, 4}) {
      ExecutorOptions options = engine.options().executor;
      options.num_threads = threads;
      options.mem_budget_bytes = budgeted ? kMemBudget : 0;
      MemoryBudget::Global().ResetPeak();
      const auto start = std::chrono::steady_clock::now();
      const auto result = engine.ExecutePlan(*query, mem_plan, options,
                                             engine.options().execution_seed);
      if (!result.ok()) {
        std::fprintf(stderr, "mem_budget %s/%dt failed: %s\n",
                     budgeted ? "budgeted" : "unbudgeted", threads,
                     result.status().ToString().c_str());
        std::exit(1);
      }
      const double wall = SecondsSince(start);
      const uint64_t fp = OrderedRowsFingerprint(result->rows());
      if (records.empty()) {
        ref_fingerprint = fp;
        ref_makespan = result->makespan();
      } else if (fp != ref_fingerprint || result->makespan() != ref_makespan) {
        std::fprintf(stderr,
                     "mem_budget: %s run at %d threads diverged from the "
                     "unbudgeted single-thread reference (fingerprint %llx "
                     "vs %llx, makespan %lld vs %lld) — the budget must be "
                     "invisible to results\n",
                     budgeted ? "budgeted" : "unbudgeted", threads,
                     static_cast<unsigned long long>(fp),
                     static_cast<unsigned long long>(ref_fingerprint),
                     static_cast<long long>(result->makespan()),
                     static_cast<long long>(ref_makespan));
        std::exit(1);
      }
      const ExecutionResult& exec = result->execution();
      if (budgeted) {
        if (exec.spill_bytes <= 0 || exec.spill_files <= 0) {
          std::fprintf(stderr,
                       "mem_budget: budgeted run at %d threads never "
                       "spilled (budget %lld, peak %lld) — the workload "
                       "must exceed the budget to gate anything\n",
                       threads, static_cast<long long>(kMemBudget),
                       static_cast<long long>(exec.peak_mem_bytes));
          std::exit(1);
        }
        if (static_cast<double>(exec.peak_mem_bytes) >
            kMemPeakSlack * static_cast<double>(kMemBudget)) {
          std::fprintf(stderr,
                       "mem_budget: budgeted run at %d threads peaked at "
                       "%lld bytes, over %.2fx the %lld-byte budget — "
                       "peak memory must stay flat under spilling\n",
                       threads, static_cast<long long>(exec.peak_mem_bytes),
                       kMemPeakSlack, static_cast<long long>(kMemBudget));
          std::exit(1);
        }
      }
      MemBenchRecord rec;
      rec.workload = "mem_budget";
      rec.query = "equi_125k";
      rec.mode = budgeted ? "budgeted" : "unbudgeted";
      rec.threads = threads;
      rec.mem_budget_bytes = budgeted ? kMemBudget : 0;
      rec.jobs = static_cast<int>(mem_plan.jobs.size());
      rec.wall_seconds = wall;
      rec.sim_makespan_seconds = result->simulated_seconds();
      rec.sim_shuffle_bytes = result->sim_shuffle_bytes();
      rec.result_rows_physical = result->num_rows();
      rec.spill_bytes = exec.spill_bytes;
      rec.spill_files = exec.spill_files;
      rec.peak_mem_bytes = exec.peak_mem_bytes;
      records.push_back(rec);
      std::printf("  %-8s %-10s threads=%d  wall=%7.3fs  rows=%lld  "
                  "spill=%lld B  peak=%lld B\n",
                  rec.workload.c_str(), rec.mode.c_str(), threads, wall,
                  static_cast<long long>(rec.result_rows_physical),
                  static_cast<long long>(rec.spill_bytes),
                  static_cast<long long>(rec.peak_mem_bytes));
      std::fflush(stdout);
    }
  }
  const Status status = WriteMemBenchJson(out_path, records);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    std::exit(1);
  }
  std::printf("wrote %s (%zu records)\n", out_path.c_str(), records.size());
}

int Main(int argc, char** argv) {
  const StatusOr<CommonFlags> flags = ParseCommonFlags(
      argc, argv, /*allow_threads=*/false, /*allow_no_prune=*/true);
  if (!flags.ok()) {
    std::fprintf(stderr,
                 "%s\nusage: %s [--no-prune] [--trace-out=FILE] "
                 "[--metrics-out=FILE] [output.json]\n",
                 flags.status().ToString().c_str(), argv[0]);
    return 2;
  }
  ObsExporter obs(flags->trace_out, flags->metrics_out);
  const std::string out_path =
      flags->output_path.empty() ? "BENCH_runtime.json" : flags->output_path;
  // Scaling curves are flat when the host cannot actually run kMaxThreads
  // in parallel; hardware_threads is recorded in every record.
  WarnIfSingleHardwareThread(kMaxThreads);

  // The one session of this bench. The pool is sized for the widest step;
  // per-call overrides select the effective thread count.
  EngineOptions engine_options;
  engine_options.executor.num_threads = kMaxThreads;
  engine_options.planner.enable_column_pruning = !flags->no_prune;
  if (flags->no_prune) {
    std::printf("column pruning DISABLED (--no-prune): full-width "
                "intermediates everywhere\n");
  }
  ThetaEngine engine(engine_options);
  std::vector<RuntimeBenchRecord> records;

  // ---- Session reuse: cold single-shot vs warm caches (must be first,
  // while the engine is still cold) ----
  RunEngineReuse(engine, records);

  // ---- TPC-H Q17 at the 20k lineitem scale (multi-way self-join) ----
  TpchOptions tpch_options;
  tpch_options.scale_factor = 100;
  tpch_options.physical_lineitem_rows = 20000;
  const TpchData db = GenerateTpch(tpch_options);
  const auto q17 = BuildTpchQuery(17, db);
  if (!q17.ok()) {
    std::fprintf(stderr, "tpch q17: %s\n", q17.status().ToString().c_str());
    return 1;
  }
  const auto q17_plan = engine.PlanQuery(*q17);
  if (!q17_plan.ok()) return 1;
  RunScalingCurve({"tpch", "q17_20k", *q17, *q17_plan}, engine, records);

  // ---- Column-pruning ablation on the Q17 plan ----
  if (!flags->no_prune) {
    RunPruneComparison(*q17, *q17_plan, engine, records);
  }

  // ---- Flights itinerary chain (3 legs) ----
  FlightLegOptions leg_options;
  leg_options.physical_rows = 2000;
  std::vector<RelationPtr> legs;
  for (int i = 0; i < 3; ++i) legs.push_back(GenerateFlightLeg(i, leg_options));
  const auto flights =
      BuildItineraryQuery(legs, {StayOver{}, StayOver{}});
  if (!flights.ok()) return 1;
  const auto flights_plan = engine.PlanQuery(*flights);
  if (!flights_plan.ok()) return 1;
  RunScalingCurve({"flights", "chain3_2k", *flights, *flights_plan}, engine,
                  records);

  // ---- Mobile Q1 (concurrent calls at the same station) ----
  MobileDataOptions mobile_options;
  mobile_options.physical_rows = 4000;
  mobile_options.logical_bytes = 2 * kGiB;
  const auto mobile = BuildMobileQuery(1, mobile_options);
  if (!mobile.ok()) return 1;
  const auto mobile_plan = engine.PlanQuery(*mobile);
  if (!mobile_plan.ok()) return 1;
  RunScalingCurve({"mobile", "q1_4k", *mobile, *mobile_plan}, engine,
                  records);

  // ---- Fault-tolerance machinery overhead on the Q17 plan ----
  RunFaultOverhead(*q17, *q17_plan, engine, records);

  // ---- Span-tracing overhead on the Q17 plan ----
  RunTraceOverhead(*q17, *q17_plan, engine, records);

  // ---- Sort-kernel gate sweep over the Q17 pairwise cascade ----
  const auto q17_hive = PlanHiveStyle(*q17, engine.cluster());
  if (!q17_hive.ok()) {
    std::fprintf(stderr, "hive-style q17 plan failed (gate sweep): %s\n",
                 q17_hive.status().ToString().c_str());
    return 1;
  }
  RunGateSweep(*q17, *q17_hive, engine, records);

  // ---- Bounded-memory shuffle: unbudgeted vs tight budget, own file ----
  const std::string::size_type slash = out_path.find_last_of('/');
  const std::string mem_out_path =
      slash == std::string::npos
          ? std::string("BENCH_mem.json")
          : out_path.substr(0, slash + 1) + "BENCH_mem.json";
  RunMemBudget(engine, mem_out_path);

  const Status status = WriteRuntimeBenchJson(out_path, records);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s (%zu records)\n", out_path.c_str(), records.size());
  if (const Status s = obs.Finish(&engine.metrics_registry()); !s.ok()) {
    std::fprintf(stderr, "observability export failed: %s\n",
                 s.ToString().c_str());
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace mrtheta::bench

int main(int argc, char** argv) { return mrtheta::bench::Main(argc, argv); }
