// Fig. 13: the TPC-H harness with kP <= 64.
#include "bench/mobile_suite.h"
int main() { return mrtheta::bench::RunTpchSuite(64); }
