// Table 3: TPC-H benchmark query statistics for the amended Q7/Q17/Q18/Q21.

#include <cstdio>
#include <iostream>
#include <set>

#include "bench/bench_util.h"
#include "src/common/table_printer.h"
#include "src/workload/tpch.h"

using namespace mrtheta;  // NOLINT

int main() {
  bench::Harness harness(96);
  std::printf("Table 3: TPC-H query statistics (SF 200)\n\n");
  TablePrinter table({"Q", "Relations", "Inequality Func.", "Join Cnt.",
                      "Result Sel."});
  TpchOptions options;
  options.scale_factor = 200;
  options.physical_lineitem_rows = 4000;
  const TpchData db = GenerateTpch(options);
  for (int qid : {7, 17, 18, 21}) {
    const auto query = BuildTpchQuery(qid, db);
    if (!query.ok()) return 1;
    std::set<std::string> ops;
    for (const auto& c : query->conditions()) {
      if (IsInequality(c.op)) ops.insert(ThetaOpName(c.op));
    }
    std::string opstr = "{";
    for (const auto& o : ops) {
      if (opstr.size() > 1) opstr += ",";
      opstr += o;
    }
    opstr += "}";
    const auto run = bench::RunSystem("ours", *query, harness);
    if (!run.ok()) return 1;
    char sel[32];
    std::snprintf(sel, sizeof(sel), "%.3g", run->result_selectivity);
    table.AddRow({"Q" + std::to_string(qid),
                  std::to_string(query->num_relations()), opstr,
                  std::to_string(query->num_conditions()), sel});
  }
  table.Print(std::cout);
  return 0;
}
