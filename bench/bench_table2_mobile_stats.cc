// Table 2: mobile benchmark query statistics — relation count, inequality
// functions, join-condition count and measured result selectivity.

#include <cstdio>
#include <iostream>
#include <set>

#include "bench/bench_util.h"
#include "src/common/table_printer.h"
#include "src/workload/mobile.h"

using namespace mrtheta;  // NOLINT

int main() {
  bench::Harness harness(96);
  std::printf("Table 2: mobile benchmark query statistics (20 GB)\n\n");
  TablePrinter table({"Q", "Relations", "Inequality Func.", "Join Cnt.",
                      "Result Sel."});
  for (int qid = 1; qid <= 4; ++qid) {
    MobileDataOptions options;
    options.physical_rows = qid <= 2 ? 900 : 350;
    options.logical_bytes = 20 * kGiB;
    const auto query = BuildMobileQuery(qid, options);
    if (!query.ok()) return 1;
    std::set<std::string> ops;
    for (const auto& c : query->conditions()) {
      if (IsInequality(c.op)) ops.insert(ThetaOpName(c.op));
    }
    std::string opstr = "{";
    for (const auto& o : ops) {
      if (opstr.size() > 1) opstr += ",";
      opstr += o;
    }
    opstr += "}";
    const auto run = bench::RunSystem("ours", *query, harness);
    if (!run.ok()) return 1;
    char sel[32];
    std::snprintf(sel, sizeof(sel), "%.3g", run->result_selectivity);
    table.AddRow({"Q" + std::to_string(qid),
                  std::to_string(query->num_relations()), opstr,
                  std::to_string(query->num_conditions()), sel});
  }
  table.Print(std::cout);
  std::printf(
      "\nNote: Result Sel. = logical result rows / cross product of the\n"
      "logical input cardinalities (see EXPERIMENTS.md for the comparison\n"
      "with the paper's reported values).\n");
  return 0;
}
