// Fig. 9: execution time of mobile Q1..Q4 over 20/100/500 GB, kP <= 96,
// comparing our planner against YSmart/Hive/Pig-style baselines.
#include "bench/mobile_suite.h"
int main() { return mrtheta::bench::RunMobileSuite(96); }
