// Fig. 10: same harness as Fig. 9 with kP <= 64 — the resource-scarce
// regime where kP-aware scheduling pays off.
#include "bench/mobile_suite.h"
int main() { return mrtheta::bench::RunMobileSuite(64); }
