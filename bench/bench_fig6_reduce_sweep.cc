// Fig. 6: execution time of a sample join job as a function of the reduce
// task count (kR = 2..64) for inputs of 500/100/10/1 GB.
//
// Reproduces the paper's observations: large inputs gain sharply from the
// first reducers then flatten; small inputs show an inflection where
// connection overhead overtakes the shrinking per-task work.

#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "src/common/table_printer.h"
#include "src/cost/calibration.h"

using namespace mrtheta;  // NOLINT

int main() {
  SimCluster cluster{ClusterConfig{}};
  std::printf("Fig. 6: sample join execution time vs reduce tasks\n");
  std::printf("cluster: %s\n\n", cluster.config().ToString().c_str());

  const int krs[] = {2, 4, 8, 16, 24, 32, 48, 64};
  for (double gb : {500.0, 100.0, 10.0, 1.0}) {
    TablePrinter table({"kR", "time (s)"});
    double best = 1e300;
    int best_kr = 0;
    for (int kr : krs) {
      bench::Harness* unused = nullptr;
      (void)unused;
      SyntheticJobSpec job;
      job.input_bytes = gb * kGiB;
      job.alpha = 1.0;  // a join shuffles roughly its input
      job.num_reduce_tasks = kr;
      job.output_bytes = 0.3 * gb * kGiB;
      job.skew = 0.2;
      const auto timing = RunSyntheticJob(cluster, job);
      if (!timing.ok()) {
        std::fprintf(stderr, "sim failed: %s\n",
                     timing.status().ToString().c_str());
        return 1;
      }
      const double seconds = ToSeconds(timing->finish - timing->release);
      if (seconds < best) {
        best = seconds;
        best_kr = kr;
      }
      table.AddRow({TablePrinter::Int(kr), TablePrinter::Num(seconds, 1)});
    }
    std::printf("input %.0f GB (best kR = %d):\n", gb, best_kr);
    table.Print(std::cout);
    std::printf("\n");
  }
  return 0;
}
