// Fig. 8: cost-model validation — estimated vs simulated execution time of
// a self-join program over the mobile data set across map-output sizes.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "src/common/table_printer.h"
#include "src/exec/hilbert_join.h"
#include "src/mapreduce/job_runner.h"
#include "src/workload/mobile.h"

using namespace mrtheta;  // NOLINT

int main() {
  bench::Harness harness(96);
  const ClusterConfig& cfg = harness.cluster.config();

  std::printf("Fig. 8: estimated vs simulated self-join execution time\n\n");
  TablePrinter table({"map output", "simulated (s)", "estimated (s)",
                      "est/sim"});

  for (double gb : {0.25, 1.0, 4.0, 16.0, 64.0}) {
    // Self-join of the call table on (bsc, d): two independent samples.
    MobileDataOptions options;
    options.physical_rows = 1500;
    options.logical_bytes = static_cast<int64_t>(gb / 2.0 * kGiB);
    RelationPtr t1 = GenerateMobileCallsInstance(options, 0);
    RelationPtr t2 = GenerateMobileCallsInstance(options, 1);

    MultiwayJoinJobSpec spec;
    spec.inputs = {JoinSide::ForBase(t1, 0), JoinSide::ForBase(t2, 1)};
    spec.base_relations = {t1, t2};
    spec.conditions = {{{0, 4}, ThetaOp::kEq, {1, 4}, 0.0, 0},
                       {{0, 1}, ThetaOp::kEq, {1, 1}, 0.0, 1}};
    spec.num_reduce_tasks = 32;
    const auto job = BuildHilbertJoinJob(spec);
    if (!job.ok()) return 1;

    // "Real": run physically, clock through the simulator.
    const auto run = harness.cluster.RunJob(*job);
    if (!run.ok()) return 1;
    const double simulated = ToSeconds(run->duration);

    // "Estimated": the fitted cost model on the measured profile.
    JobProfile profile;
    profile.input_bytes =
        static_cast<double>(run->metrics.input_bytes_logical);
    profile.alpha =
        static_cast<double>(run->metrics.map_output_bytes_logical) /
        profile.input_bytes;
    profile.output_bytes =
        static_cast<double>(run->metrics.output_bytes_logical);
    profile.num_reduce_tasks = job->num_reduce_tasks;
    // σ from the measured reduce-input distribution.
    double mean = 0.0, var = 0.0;
    for (int64_t b : run->metrics.reduce_input_bytes_logical) {
      mean += static_cast<double>(b);
    }
    mean /= run->metrics.reduce_input_bytes_logical.size();
    for (int64_t b : run->metrics.reduce_input_bytes_logical) {
      var += (b - mean) * (b - mean);
    }
    var /= run->metrics.reduce_input_bytes_logical.size();
    profile.sigma_reduce_bytes = std::sqrt(var);

    const double estimated =
        PredictJobTime(harness.params, cfg, profile, cfg.num_workers).total;
    table.AddRow({FormatBytes(run->metrics.map_output_bytes_logical),
                  TablePrinter::Num(simulated, 1),
                  TablePrinter::Num(estimated, 1),
                  TablePrinter::Num(estimated / simulated, 2)});
  }
  table.Print(std::cout);
  return 0;
}
