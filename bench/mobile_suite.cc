#include "bench/mobile_suite.h"

#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "src/common/table_printer.h"
#include "src/workload/mobile.h"
#include "src/workload/tpch.h"

namespace mrtheta::bench {

int RunMobileSuite(int kp) {
  Harness harness(kp);
  std::printf("Mobile benchmark queries (Sec. 6.3.1), kP <= %d\n", kp);
  std::printf("cluster: %s\n\n", harness.cluster.config().ToString().c_str());
  for (int qid = 1; qid <= 4; ++qid) {
    TablePrinter table({"volume", "ours (s)", "ysmart (s)", "hive (s)",
                        "pig (s)", "hive/ours"});
    for (int64_t gb : {20, 100, 500}) {
      MobileDataOptions options;
      // Physical sample sizes chosen so the expansive <>-queries stay
      // materializable; logical volume drives the simulated clock.
      options.physical_rows = qid <= 2 ? 900 : 350;
      options.logical_bytes = gb * kGiB;
      StatusOr<Query> query = BuildMobileQuery(qid, options);
      if (!query.ok()) {
        std::fprintf(stderr, "query build failed\n");
        return 1;
      }
      const auto results = RunAllSystems(*query, harness);
      table.AddRow({std::to_string(gb) + "GB",
                    TablePrinter::Num(results[0].seconds, 1),
                    TablePrinter::Num(results[1].seconds, 1),
                    TablePrinter::Num(results[2].seconds, 1),
                    TablePrinter::Num(results[3].seconds, 1),
                    TablePrinter::Num(
                        results[2].seconds / results[0].seconds, 2)});
    }
    std::printf("Q%d:\n", qid);
    table.Print(std::cout);
    std::printf("\n");
  }
  return 0;
}

int RunTpchSuite(int kp) {
  Harness harness(kp);
  std::printf("TPC-H benchmark queries (Sec. 6.3.2, amended), kP <= %d\n",
              kp);
  std::printf("cluster: %s\n\n", harness.cluster.config().ToString().c_str());
  for (int qid : {7, 17, 18, 21}) {
    TablePrinter table({"volume", "ours (s)", "ysmart (s)", "hive (s)",
                        "pig (s)", "hive/ours"});
    for (int sf : {200, 500, 1000}) {
      TpchOptions options;
      options.scale_factor = sf;
      options.physical_lineitem_rows = 4000;
      const TpchData db = GenerateTpch(options);
      StatusOr<Query> query = BuildTpchQuery(qid, db);
      if (!query.ok()) {
        std::fprintf(stderr, "query build failed\n");
        return 1;
      }
      const auto results = RunAllSystems(*query, harness);
      table.AddRow({std::to_string(sf) + "GB",
                    TablePrinter::Num(results[0].seconds, 1),
                    TablePrinter::Num(results[1].seconds, 1),
                    TablePrinter::Num(results[2].seconds, 1),
                    TablePrinter::Num(results[3].seconds, 1),
                    TablePrinter::Num(
                        results[2].seconds / results[0].seconds, 2)});
    }
    std::printf("Q%d:\n", qid);
    table.Print(std::cout);
    std::printf("\n");
  }
  return 0;
}

}  // namespace mrtheta::bench
