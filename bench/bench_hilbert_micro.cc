// Micro-benchmarks (google-benchmark) for the hot primitives: Hilbert
// encode/decode, coverage construction, and condition evaluation.

#include <benchmark/benchmark.h>

#include "src/exec/join_side.h"
#include "src/hilbert/hilbert.h"

namespace mrtheta {
namespace {

void BM_HilbertEncode(benchmark::State& state) {
  const int dims = static_cast<int>(state.range(0));
  const HilbertCurve curve = *HilbertCurve::Create(dims, 5);
  std::vector<uint32_t> coords(dims, 7);
  uint64_t i = 0;
  for (auto _ : state) {
    coords[0] = static_cast<uint32_t>(i++ % curve.side());
    benchmark::DoNotOptimize(curve.Encode(coords));
  }
}
BENCHMARK(BM_HilbertEncode)->Arg(2)->Arg(4)->Arg(8);

void BM_HilbertDecode(benchmark::State& state) {
  const int dims = static_cast<int>(state.range(0));
  const HilbertCurve curve = *HilbertCurve::Create(dims, 5);
  std::vector<uint32_t> coords(dims);
  uint64_t i = 0;
  for (auto _ : state) {
    curve.Decode(i++ % curve.num_cells(), coords);
    benchmark::DoNotOptimize(coords[0]);
  }
}
BENCHMARK(BM_HilbertDecode)->Arg(2)->Arg(4)->Arg(8);

void BM_CoverageBuild(benchmark::State& state) {
  const HilbertCurve curve = *HilbertCurve::Create(3, 4);
  for (auto _ : state) {
    auto coverage = SegmentCoverage::Build(curve,
                                           static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(coverage->num_segments());
  }
}
BENCHMARK(BM_CoverageBuild)->Arg(8)->Arg(64);

void BM_MixHash(benchmark::State& state) {
  uint64_t x = 1;
  for (auto _ : state) {
    x = MixHash(x, 0x1234);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_MixHash);

}  // namespace
}  // namespace mrtheta

BENCHMARK_MAIN();
