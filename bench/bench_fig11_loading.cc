// Fig. 11: data-loading time — plain HDFS upload vs Hive load vs our
// method (upload + sampling + statistics/index construction).

#include <cstdio>
#include <iostream>

#include "src/common/table_printer.h"
#include "src/mapreduce/load_model.h"

using namespace mrtheta;  // NOLINT

int main() {
  ClusterConfig cfg;
  LoadModel model;
  std::printf("Fig. 11: data loading time (s)\n\n");
  TablePrinter table({"volume (GB)", "plain upload", "hive", "ours",
                      "ours/hive"});
  for (int64_t gb : {1, 5, 20, 50, 100, 200, 350, 500}) {
    const int64_t bytes = gb * kGiB;
    const double plain = ToSeconds(model.PlainUpload(cfg, bytes));
    const double hive = ToSeconds(model.HiveLoad(cfg, bytes));
    const double ours = ToSeconds(model.OurLoad(cfg, bytes));
    table.AddRow({TablePrinter::Int(gb), TablePrinter::Num(plain, 0),
                  TablePrinter::Num(hive, 0), TablePrinter::Num(ours, 0),
                  TablePrinter::Num(ours / hive, 3)});
  }
  table.Print(std::cout);
  return 0;
}
