// Fig. 12: TPC-H Q7/Q17/Q18/Q21 (amended with inequality predicates) at
// SF 200/500/1000, kP <= 96.
#include "bench/mobile_suite.h"
int main() { return mrtheta::bench::RunTpchSuite(96); }
