// Fig. 7: (a) the best kR for different map-output volumes with the
// fitted curve used by the planner; (b) the calibrated distributions of
// the cost-model variables p and q.

#include <cstdio>
#include <iostream>
#include <vector>

#include "src/common/table_printer.h"
#include "src/cost/calibration.h"
#include "src/cost/kr_chooser.h"

using namespace mrtheta;  // NOLINT

int main() {
  SimCluster cluster{ClusterConfig{}};

  // ---- Fig. 7(a): sweep map output volume, find the kR that minimizes
  // the simulated job time. ----
  std::printf("Fig. 7(a): best kR vs total map output volume\n");
  TablePrinter fig7a({"map output (GB)", "best kR", "fit kR"});
  std::vector<double> volumes_gb = {1, 2, 5, 10, 25, 50, 100, 200};
  std::vector<double> best_krs;
  for (double gb : volumes_gb) {
    double best = 1e300;
    int best_kr = 1;
    for (int kr = 2; kr <= 80; kr += 2) {
      SyntheticJobSpec job;
      job.input_bytes = gb * kGiB;  // alpha 1: output == input volume
      job.alpha = 1.0;
      job.num_reduce_tasks = kr;
      job.output_bytes = 0.2 * gb * kGiB;
      const auto timing = RunSyntheticJob(cluster, job);
      if (!timing.ok()) return 1;
      const double seconds = ToSeconds(timing->finish - timing->release);
      if (seconds < best) {
        best = seconds;
        best_kr = kr;
      }
    }
    best_krs.push_back(static_cast<double>(best_kr));
  }
  const PowerFit fit = FitPowerLaw(volumes_gb, best_krs);
  for (size_t i = 0; i < volumes_gb.size(); ++i) {
    fig7a.AddRow({TablePrinter::Num(volumes_gb[i], 0),
                  TablePrinter::Int(static_cast<int64_t>(best_krs[i])),
                  TablePrinter::Num(fit(volumes_gb[i]), 1)});
  }
  fig7a.Print(std::cout);
  std::printf("fitting curve: kR = %.2f * volumeGB^%.2f\n\n", fit.a, fit.b);

  // ---- Fig. 7(b): calibrated p and q ----
  const auto calib = CalibrateCostModel(cluster);
  if (!calib.ok()) {
    std::fprintf(stderr, "calibration failed: %s\n",
                 calib.status().ToString().c_str());
    return 1;
  }
  std::printf("Fig. 7(b): fitted p (spill cost) vs per-task output\n");
  TablePrinter pt({"map output/task (MB)", "p (ms/MB)"});
  for (size_t i = 0; i < calib->p_volumes.size(); ++i) {
    pt.AddRow({TablePrinter::Num(calib->p_volumes[i] / kMiB, 0),
               TablePrinter::Num(calib->p_values[i] * kMiB * 1e3, 3)});
  }
  pt.Print(std::cout);
  std::printf("\nFig. 7(b): fitted q (connection overhead) vs reducers\n");
  TablePrinter qt({"reduce tasks", "q (s per map task)"});
  for (size_t i = 0; i < calib->q_counts.size(); ++i) {
    qt.AddRow({TablePrinter::Num(calib->q_counts[i], 0),
               TablePrinter::Num(calib->q_values[i], 4)});
  }
  qt.Print(std::cout);
  return 0;
}
