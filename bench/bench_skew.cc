// Skew-aware partitioning benchmark (docs/SKEW.md): reducer-input balance
// of Zipf-skewed mobile joins with skew handling off vs on.
//
// Two layers:
//  1. Job-level: a "calls at the same station" pair join over Zipf(1.2)
//     station codes, built directly as a Hilbert join job. The top station
//     holds ~18% of every sample, so without skew handling one hash slice
//     (and every curve segment covering it) carries the pile. The bench
//     *asserts* the acceptance bar: max/mean reducer input <= 1.5 with
//     skew handling on vs >= 3.0 with it off, with identical join output.
//  2. Plan-level: mobile Q1 and a Zipf-skewed TPC-H Q17 through the
//     planner + executor, skew off vs auto — per-reducer inputs and the
//     simulated makespan both reflect the rebalanced assignment (Q17's
//     partkey chain fuses all three inputs into one hash dimension, the
//     worst case: max/mean ~27 -> ~2 and a double-digit percent simulated
//     makespan cut).
//
// Emits BENCH_skew.json; the CI benchmark-regression gate
// (scripts/check_bench.py) compares it against the committed baseline.
//
// Usage: bench_skew [--trace-out=F] [--metrics-out=F] [output.json]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/api/theta_engine.h"
#include "src/common/flags.h"
#include "src/obs/obs_export.h"
#include "src/exec/hilbert_join.h"
#include "src/mapreduce/job_runner.h"
#include "src/sched/skew_assigner.h"
#include "src/workload/mobile.h"
#include "src/workload/tpch.h"

namespace mrtheta::bench {
namespace {

constexpr double kZipfExponent = 1.2;
constexpr int64_t kPairRows = 8000;
constexpr int kPairReduceTasks = 32;
// Acceptance bars (ISSUE 3): the configured workload must rebalance to
// <= 1.5 with skew handling on and must demonstrate >= 3.0 without it.
constexpr double kMaxRatioOn = 1.5;
constexpr double kMinRatioOff = 3.0;

// Mobile pair join: t1.bsc = t2.bsc AND t1.bt <= t2.bt over two
// independent samples of the Zipf-skewed call table.
MultiwayJoinJobSpec StationPairSpec(SkewHandling skew_handling) {
  MobileDataOptions options;
  options.physical_rows = kPairRows;
  options.station_skew = kZipfExponent;
  MultiwayJoinJobSpec spec;
  spec.name = "station-pair";
  spec.base_relations = {GenerateMobileCallsInstance(options, 0),
                         GenerateMobileCallsInstance(options, 1)};
  spec.inputs = {JoinSide::ForBase(spec.base_relations[0], 0),
                 JoinSide::ForBase(spec.base_relations[1], 1)};
  // Schema: id, d, bt, l, bsc.
  spec.conditions = {JoinCondition{{0, 4}, ThetaOp::kEq, {1, 4}, 0.0, 0},
                     JoinCondition{{0, 2}, ThetaOp::kLe, {1, 2}, 0.0, 1}};
  spec.num_reduce_tasks = kPairReduceTasks;
  spec.skew_handling = skew_handling;
  return spec;
}

// Sorted row multiset fingerprint (task decomposition changes row order;
// the content must not change).
uint64_t RowsFingerprint(const Relation& rel) {
  std::vector<uint64_t> hashes;
  hashes.reserve(static_cast<size_t>(rel.num_rows()));
  for (int64_t r = 0; r < rel.num_rows(); ++r) {
    uint64_t h = 0x9e3779b97f4a7c15ULL;
    for (int c = 0; c < rel.schema().num_columns(); ++c) {
      h = h * 0x100000001b3ULL ^ static_cast<uint64_t>(rel.GetInt(r, c));
    }
    hashes.push_back(h);
  }
  std::sort(hashes.begin(), hashes.end());
  uint64_t fp = 0xcbf29ce484222325ULL;
  for (uint64_t h : hashes) fp = fp * 0x100000001b3ULL ^ h;
  return fp;
}

SkewBenchRecord PairRecord(SkewHandling skew_handling, uint64_t* fingerprint) {
  HilbertJoinPlanInfo info;
  const auto spec = BuildHilbertJoinJob(StationPairSpec(skew_handling), &info);
  if (!spec.ok()) {
    std::fprintf(stderr, "station-pair build failed: %s\n",
                 spec.status().ToString().c_str());
    std::exit(1);
  }
  const auto start = std::chrono::steady_clock::now();
  const auto result = RunJobPhysically(*spec);
  if (!result.ok()) {
    std::fprintf(stderr, "station-pair run failed: %s\n",
                 result.status().ToString().c_str());
    std::exit(1);
  }
  const ReduceBalance balance =
      ComputeReduceBalance(result->metrics.reduce_input_bytes_logical);
  SkewBenchRecord rec;
  rec.workload = "mobile";
  rec.query = "station_pair_8k";
  rec.mode = skew_handling == SkewHandling::kOff ? "off" : "on";
  rec.zipf_exponent = kZipfExponent;
  rec.reduce_tasks = spec->num_reduce_tasks;
  rec.residual_tasks = info.skew.residual_tasks;
  rec.heavy_tasks = info.skew.heavy_tasks;
  rec.heavy_groups = static_cast<int>(info.skew.groups.size());
  rec.max_reduce_input_bytes = balance.max_bytes;
  rec.mean_reduce_input_bytes = balance.mean_bytes;
  rec.max_mean_ratio = balance.ratio;
  rec.result_rows_physical = result->output->num_rows();
  rec.wall_seconds = SecondsSince(start);
  *fingerprint = RowsFingerprint(*result->output);
  std::printf("  %-18s %-4s tasks=%2d (resid=%2d heavy=%2d/%d groups)  "
              "max/mean=%5.2f  rows=%lld\n",
              rec.query.c_str(), rec.mode.c_str(), rec.reduce_tasks,
              rec.residual_tasks, rec.heavy_tasks, rec.heavy_groups,
              rec.max_mean_ratio,
              static_cast<long long>(rec.result_rows_physical));
  std::fflush(stdout);
  return rec;
}

// Plan-level: a whole query through the ThetaEngine session, skew off vs
// on. One record per mode with the balance of the plan's (first) Hilbert
// join and the simulated makespan of the whole plan.
void RunPlanLevel(const Query& query, const std::string& name,
                  ThetaEngine& engine,
                  std::vector<SkewBenchRecord>& records) {
  const auto plan = engine.PlanQuery(query);
  if (!plan.ok()) std::exit(1);

  int64_t base_rows = -1;
  for (const SkewHandling mode : {SkewHandling::kOff, SkewHandling::kAuto}) {
    ExecutorOptions exec_options = engine.options().executor;
    exec_options.skew_handling = mode;
    const auto start = std::chrono::steady_clock::now();
    const auto result = engine.ExecutePlan(query, *plan, exec_options,
                                           engine.options().execution_seed);
    if (!result.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", name.c_str(),
                   result.status().ToString().c_str());
      std::exit(1);
    }
    SkewBenchRecord rec;
    rec.workload = name.substr(0, name.find('/'));
    rec.query = name.substr(name.find('/') + 1);
    rec.mode = mode == SkewHandling::kOff ? "off" : "on";
    rec.zipf_exponent = kZipfExponent;
    for (const JobExecution& job : result->jobs()) {
      if (job.kind != PlanJobKind::kHilbertJoin) continue;
      const ReduceBalance balance =
          ComputeReduceBalance(job.metrics.reduce_input_bytes_logical);
      rec.reduce_tasks = job.reduce_tasks;
      rec.residual_tasks = job.skew_residual_tasks;
      rec.heavy_tasks = job.skew_heavy_tasks;
      rec.heavy_groups = job.skew_heavy_groups;
      rec.max_reduce_input_bytes = balance.max_bytes;
      rec.mean_reduce_input_bytes = balance.mean_bytes;
      rec.max_mean_ratio = balance.ratio;
      break;
    }
    rec.result_rows_physical = result->num_rows();
    rec.sim_makespan_seconds = result->simulated_seconds();
    rec.wall_seconds = SecondsSince(start);
    std::printf("  %-18s %-4s tasks=%2d (resid=%2d heavy=%2d/%d groups)  "
                "max/mean=%5.2f  sim=%7.1fs  rows=%lld\n",
                rec.query.c_str(), rec.mode.c_str(), rec.reduce_tasks,
                rec.residual_tasks, rec.heavy_tasks, rec.heavy_groups,
                rec.max_mean_ratio, rec.sim_makespan_seconds,
                static_cast<long long>(rec.result_rows_physical));
    std::fflush(stdout);
    if (base_rows < 0) {
      base_rows = rec.result_rows_physical;
    } else if (rec.result_rows_physical != base_rows) {
      std::fprintf(stderr,
                   "%s: skew handling changed the result "
                   "(%lld vs %lld rows)\n", name.c_str(),
                   static_cast<long long>(rec.result_rows_physical),
                   static_cast<long long>(base_rows));
      std::exit(1);
    }
    records.push_back(rec);
  }
}

int Main(int argc, char** argv) {
  const StatusOr<CommonFlags> flags =
      ParseCommonFlags(argc, argv, /*allow_threads=*/false);
  if (!flags.ok()) {
    std::fprintf(stderr,
                 "%s\nusage: %s [--trace-out=FILE] [--metrics-out=FILE] "
                 "[output.json]\n",
                 flags.status().ToString().c_str(), argv[0]);
    return 2;
  }
  ObsExporter obs(flags->trace_out, flags->metrics_out);
  const std::string out_path =
      flags->output_path.empty() ? "BENCH_skew.json" : flags->output_path;
  // This bench runs single-threaded (default EngineOptions), so there is
  // no time-slicing to warn about; wall_seconds is measured and exempt
  // from the CI gate either way.
  std::vector<SkewBenchRecord> records;

  // ---- Job-level: station-pair join, skew off vs on ----
  uint64_t fp_off = 0;
  uint64_t fp_on = 0;
  records.push_back(PairRecord(SkewHandling::kOff, &fp_off));
  records.push_back(PairRecord(SkewHandling::kForce, &fp_on));
  if (fp_off != fp_on) {
    std::fprintf(stderr,
                 "FAIL: skew handling changed the station-pair result\n");
    return 1;
  }
  const double ratio_off = records[records.size() - 2].max_mean_ratio;
  const double ratio_on = records[records.size() - 1].max_mean_ratio;
  if (ratio_off < kMinRatioOff) {
    std::fprintf(stderr,
                 "FAIL: skew-off ratio %.2f below the %.1f the workload "
                 "must demonstrate\n",
                 ratio_off, kMinRatioOff);
    return 1;
  }
  if (ratio_on > kMaxRatioOn) {
    std::fprintf(stderr, "FAIL: skew-on ratio %.2f exceeds %.2f\n", ratio_on,
                 kMaxRatioOn);
    return 1;
  }

  // ---- Plan-level: mobile Q1 and a Zipf-skewed TPC-H Q17, through one
  // ThetaEngine session ----
  ThetaEngine engine;
  {
    MobileDataOptions options;
    options.physical_rows = 4000;
    options.logical_bytes = 2 * kGiB;
    options.station_skew = kZipfExponent;
    const auto query = BuildMobileQuery(1, options);
    if (!query.ok()) std::exit(1);
    RunPlanLevel(*query, "mobile/q1_4k_2gb", engine, records);
  }
  {
    // Q17 chains l1.partkey = p.partkey = l2.partkey: all three inputs
    // fuse into ONE hash dimension, so a Zipfian part popularity is the
    // worst case for the pure curve assignment.
    TpchOptions options;
    options.scale_factor = 100;
    options.physical_lineitem_rows = 4000;
    options.lineitem_key_skew = kZipfExponent;
    const TpchData db = GenerateTpch(options);
    const auto query = BuildTpchQuery(17, db);
    if (!query.ok()) std::exit(1);
    RunPlanLevel(*query, "tpch/q17_4k_skewed", engine, records);
  }

  const Status status = WriteSkewBenchJson(out_path, records);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s (%zu records)\n", out_path.c_str(), records.size());
  if (const Status s = obs.Finish(&engine.metrics_registry()); !s.ok()) {
    std::fprintf(stderr, "observability export failed: %s\n",
                 s.ToString().c_str());
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace mrtheta::bench

int main(int argc, char** argv) { return mrtheta::bench::Main(argc, argv); }
