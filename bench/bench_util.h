#ifndef MRTHETA_BENCH_BENCH_UTIL_H_
#define MRTHETA_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <functional>
#include <string>
#include <vector>

#include "src/api/theta_engine.h"
#include "src/core/executor.h"
#include "src/core/planner.h"
#include "src/cost/cost_model.h"
#include "src/mapreduce/sim_cluster.h"

namespace mrtheta::bench {

/// One ThetaEngine session on a kP-unit cluster, calibrated eagerly.
/// Exits the process on failure (benches are top-level harnesses).
/// `cluster` and `params` are legacy views into the engine for the figure
/// benches that probe planner/cost-model internals directly.
struct Harness {
  ThetaEngine engine;
  const SimCluster& cluster;
  CostModelParams params;

  explicit Harness(int kp, int num_threads = 1);
};

/// Elapsed wall-clock seconds since `start` (bench timing boilerplate).
inline double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Simulated seconds for one (query, planner) pair. Planner name in
/// {"ours", "ysmart", "hive", "pig"}.
struct SystemResult {
  std::string system;
  double seconds = 0.0;
  int jobs = 0;
  int64_t result_rows_physical = 0;
  double result_selectivity = 0.0;
};

/// Plans and executes `query` with all four systems on `harness.cluster`.
std::vector<SystemResult> RunAllSystems(const Query& query, Harness& harness,
                                        uint64_t seed = 42);

/// Runs one system only.
StatusOr<SystemResult> RunSystem(const std::string& system,
                                 const Query& query, Harness& harness,
                                 uint64_t seed = 42);

/// One machine-readable benchmark measurement. Serialized into the
/// BENCH_*.json files that track the perf trajectory across PRs.
struct KernelBenchRecord {
  std::string label;       ///< benchmark case, e.g. "lt_20000x20000"
  std::string kernel;      ///< JoinKernelName of the measured path
  int64_t left_rows = 0;
  int64_t right_rows = 0;
  int64_t wall_ns = 0;
  double tuples_per_sec = 0.0;  ///< input tuples processed per second
  int64_t output_pairs = 0;
};

/// Writes `records` to `path` as a JSON array (overwrites the file).
Status WriteBenchJson(const std::string& path,
                      const std::vector<KernelBenchRecord>& records);

/// One measured end-to-end run of a whole query plan on the in-process
/// runtime (bench_runtime / BENCH_runtime.json): wall-clock scaling across
/// thread counts, with the thread-count-invariant simulated makespan and
/// result cardinality as correctness anchors.
struct RuntimeBenchRecord {
  std::string workload;     ///< "tpch", "flights", "mobile", "gate-sweep"
  std::string query;        ///< e.g. "q17_20k"
  int threads = 1;          ///< ExecutorOptions::num_threads
  int hardware_threads = 0; ///< std::thread::hardware_concurrency()
  int jobs = 0;             ///< plan jobs executed
  double wall_seconds = 0.0;
  double speedup_vs_1t = 1.0;
  double sim_makespan_seconds = 0.0;  ///< identical at every thread count
  /// Simulated shuffle volume: Σ over plan jobs of the logical map-output
  /// bytes. Deterministic; gated direction-aware by check_bench.py. This
  /// is the quantity column pruning / selection pushdown shrink.
  int64_t sim_shuffle_bytes = 0;
  int64_t result_rows_physical = 0;
  int64_t sort_kernel_min_pairs = 0;  ///< gate in force for this run
  /// Relative wall-clock cost of span tracing for this record's run:
  /// (traced - untraced) / untraced, min-of-reps. Only the trace_overhead
  /// workload measures it (docs/OBSERVABILITY.md); every other record
  /// carries 0. Always serialized — check_bench.py fails if a record
  /// stops emitting it.
  double trace_overhead = 0.0;
  /// Process-wide MemoryBudget high-water mark over this record's run
  /// (docs/MEMORY.md). Benches ResetPeak() before each measured execution.
  /// Always serialized; check_bench.py requires it on current records.
  int64_t peak_mem_bytes = 0;
  /// Shuffle bytes spilled to disk during this record's run. 0 for every
  /// unbudgeted workload (the benches run without a memory budget).
  int64_t spill_bytes = 0;
};

/// Writes `records` to `path` as a JSON array (overwrites the file).
Status WriteRuntimeBenchJson(const std::string& path,
                             const std::vector<RuntimeBenchRecord>& records);

/// One skew-handling measurement (bench_skew / BENCH_skew.json): the
/// reducer-input balance of a join with skew handling off vs on. All
/// volume fields are deterministic simulated quantities; only
/// wall_seconds varies across runners.
struct SkewBenchRecord {
  std::string workload;   ///< "mobile"
  std::string query;      ///< e.g. "station_pair_8k"
  std::string mode;       ///< "off" | "on"
  double zipf_exponent = 0.0;
  int reduce_tasks = 0;
  int residual_tasks = 0;     ///< Hilbert segments
  int heavy_tasks = 0;        ///< tasks in heavy-value grids
  int heavy_groups = 0;       ///< detected heavy values with a grid
  int64_t max_reduce_input_bytes = 0;
  double mean_reduce_input_bytes = 0.0;
  double max_mean_ratio = 1.0;
  int64_t result_rows_physical = 0;   ///< identical across modes
  double sim_makespan_seconds = 0.0;  ///< 0 for single-job records
  double wall_seconds = 0.0;          ///< measured; exempt from the CI gate
};

/// Writes `records` to `path` as a JSON array (overwrites the file).
Status WriteSkewBenchJson(const std::string& path,
                          const std::vector<SkewBenchRecord>& records);

/// One bounded-memory shuffle measurement (bench_runtime's mem_budget
/// workload / BENCH_mem.json): the same join executed unbudgeted and under
/// a tight --mem-budget, fingerprint-checked byte-identical before a
/// record is written. The budgeted records must spill (spill_bytes > 0)
/// and hold peak_mem_bytes within 1.25x the budget; both are gated
/// direction-aware by check_bench.py.
struct MemBenchRecord {
  std::string workload;  ///< "mem_budget"
  std::string query;     ///< e.g. "equi_40k"
  std::string mode;      ///< "unbudgeted" | "budgeted"
  int threads = 1;
  int64_t mem_budget_bytes = 0;  ///< 0 in unbudgeted mode
  int jobs = 0;
  double wall_seconds = 0.0;
  double sim_makespan_seconds = 0.0;  ///< identical across modes/threads
  int64_t sim_shuffle_bytes = 0;      ///< identical across modes/threads
  int64_t result_rows_physical = 0;   ///< identical across modes/threads
  int64_t spill_bytes = 0;
  int64_t spill_files = 0;
  int64_t peak_mem_bytes = 0;
};

/// Writes `records` to `path` as a JSON array (overwrites the file).
Status WriteMemBenchJson(const std::string& path,
                         const std::vector<MemBenchRecord>& records);

/// FNV-1a over every cell of `rows` *in row order* — the benches'
/// "byte-identical results" assertions mean content and order both.
uint64_t OrderedRowsFingerprint(const Relation& rows);

/// One serving-layer measurement (bench_engine_serve / BENCH_serve.json):
/// N closed-loop query streams submitting against one admission-controlled
/// engine. Latency/throughput fields are measured (exempt from the CI
/// gate but required to be emitted); the counters are deterministic and
/// gated exactly — every stream's every result is fingerprint-checked
/// against the sequential reference before a record is written.
struct ServeBenchRecord {
  std::string workload;  ///< "engine_serve"
  std::string query;     ///< query mix, e.g. "mixed3"
  int streams = 0;             ///< concurrent closed-loop submitters
  int queries_per_stream = 0;
  int total_queries = 0;       ///< streams * queries_per_stream
  int threads = 0;             ///< engine pool width
  int per_query_threads = 0;   ///< EngineOptions::per_query_threads
  int max_inflight_queries = 0;
  int hardware_threads = 0;
  double p50_latency_seconds = 0.0;  ///< submit -> future resolution
  double p99_latency_seconds = 0.0;
  double throughput_qps = 0.0;
  double wall_seconds = 0.0;         ///< whole round, first submit to last
  // Deterministic serving counters, deltas over this round's submissions.
  int64_t plan_cache_hits = 0;       ///< == total_queries once warmed
  int64_t plan_cache_misses = 0;     ///< 0 once warmed
  int64_t admission_rejections = 0;  ///< 0 (queue sized to never reject)
  int64_t result_rows_total = 0;     ///< Σ result rows over the round
};

/// Writes `records` to `path` as a JSON array (overwrites the file).
Status WriteServeBenchJson(const std::string& path,
                           const std::vector<ServeBenchRecord>& records);

}  // namespace mrtheta::bench

#endif  // MRTHETA_BENCH_BENCH_UTIL_H_
