// Serving-layer benchmark (docs/API.md "Serving"): N closed-loop query
// streams submitting a mixed workload against ONE admission-controlled
// ThetaEngine, measuring end-to-end submit→resolve latency (p50/p99) and
// throughput. The engine runs with the serving knobs exercised: a warm
// plan cache (every stream query must be a hit), bounded in-flight
// queries with FIFO queueing, and a per-query thread cap so no stream
// monopolizes the shared pool.
//
// Correctness anchor: every concurrent result is fingerprint-compared
// against a sequential reference pass — "byte-identical to sequential
// execution" means content and row order both, per query. The process
// aborts on any mismatch, on an unexpected plan-cache miss, or on an
// admission rejection (the queue is sized to never reject here), so the
// deterministic counters in BENCH_serve.json are exact-gated by
// scripts/check_bench.py while the latency/throughput fields stay
// measured-but-required per the existing policy.
//
// Usage: bench_engine_serve [--trace-out=F] [--metrics-out=F] [output.json]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/api/theta_engine.h"
#include "src/common/flags.h"
#include "src/common/units.h"
#include "src/obs/obs_export.h"
#include "src/workload/flights.h"
#include "src/workload/mobile.h"
#include "src/workload/tpch.h"

namespace mrtheta::bench {
namespace {

constexpr int kPoolThreads = 8;
constexpr int kPerQueryThreads = 2;
constexpr int kMaxInflight = 4;
constexpr int kQueriesPerStream = 6;
constexpr int kStreamSteps[] = {4, 8};

struct Shape {
  std::string name;
  Query query;
  uint64_t fingerprint = 0;  // sequential reference
  int64_t rows = 0;
};

// The mixed serving workload: three small query shapes from three
// workloads (self-join, TPC-H cascade, flights chain). Sized for latency
// measurement — the serving layer's cost is per-query overhead, not
// kernel throughput (bench_runtime owns that).
std::vector<Shape> BuildShapes() {
  std::vector<Shape> shapes;

  MobileDataOptions mobile_options;
  mobile_options.physical_rows = 800;
  mobile_options.logical_bytes = 2 * kGiB;
  const auto mobile = BuildMobileQuery(1, mobile_options);
  if (!mobile.ok()) {
    std::fprintf(stderr, "mobile q1: %s\n",
                 mobile.status().ToString().c_str());
    std::exit(1);
  }
  shapes.push_back({"mobile_q1_800", *mobile});

  TpchOptions tpch_options;
  tpch_options.scale_factor = 100;
  tpch_options.physical_lineitem_rows = 1500;
  const TpchData db = GenerateTpch(tpch_options);
  const auto q17 = BuildTpchQuery(17, db);
  if (!q17.ok()) {
    std::fprintf(stderr, "tpch q17: %s\n", q17.status().ToString().c_str());
    std::exit(1);
  }
  shapes.push_back({"tpch_q17_1500", *q17});

  FlightLegOptions leg_options;
  leg_options.physical_rows = 400;
  std::vector<RelationPtr> legs;
  for (int i = 0; i < 3; ++i) {
    legs.push_back(GenerateFlightLeg(i, leg_options));
  }
  const auto flights = BuildItineraryQuery(legs, {StayOver{}, StayOver{}});
  if (!flights.ok()) {
    std::fprintf(stderr, "flights: %s\n",
                 flights.status().ToString().c_str());
    std::exit(1);
  }
  shapes.push_back({"flights_chain3_400", *flights});
  return shapes;
}

// One concurrency round: `streams` closed-loop submitters, each running
// kQueriesPerStream queries round-robin over the shapes (offset by stream
// index, so shapes interleave across streams). Returns the record;
// `latencies` and correctness checks happen inside.
ServeBenchRecord RunRound(ThetaEngine& engine, std::vector<Shape>& shapes,
                          int streams) {
  const EngineMetrics before = engine.metrics();
  std::vector<std::vector<double>> latencies(streams);
  std::vector<int64_t> rows_per_stream(streams, 0);
  std::vector<std::string> failures(streams);

  const auto round_start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(streams);
  for (int s = 0; s < streams; ++s) {
    threads.emplace_back([s, &shapes, &engine, &latencies, &rows_per_stream,
                          &failures] {
      for (int i = 0; i < kQueriesPerStream; ++i) {
        Shape& shape = shapes[(s + i) % shapes.size()];
        const auto start = std::chrono::steady_clock::now();
        auto future = engine.Submit(shape.query);
        const StatusOr<QueryResult> result = future.get();
        latencies[s].push_back(SecondsSince(start));
        if (!result.ok()) {
          failures[s] = shape.name + ": " + result.status().ToString();
          return;
        }
        if (OrderedRowsFingerprint(result->rows()) != shape.fingerprint) {
          failures[s] = shape.name +
                        ": concurrent result differs from the sequential "
                        "reference";
          return;
        }
        rows_per_stream[s] += result->num_rows();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double wall = SecondsSince(round_start);
  for (const std::string& failure : failures) {
    if (!failure.empty()) {
      std::fprintf(stderr, "engine_serve (%d streams): %s\n", streams,
                   failure.c_str());
      std::exit(1);
    }
  }

  const EngineMetrics after = engine.metrics();
  ServeBenchRecord rec;
  rec.workload = "engine_serve";
  rec.query = "mixed3";
  rec.streams = streams;
  rec.queries_per_stream = kQueriesPerStream;
  rec.total_queries = streams * kQueriesPerStream;
  rec.threads = kPoolThreads;
  rec.per_query_threads = kPerQueryThreads;
  rec.max_inflight_queries = kMaxInflight;
  rec.hardware_threads =
      static_cast<int>(std::thread::hardware_concurrency());
  std::vector<double> all;
  for (const auto& per_stream : latencies) {
    all.insert(all.end(), per_stream.begin(), per_stream.end());
  }
  std::sort(all.begin(), all.end());
  rec.p50_latency_seconds = all[all.size() / 2];
  rec.p99_latency_seconds =
      all[std::min(all.size() - 1,
                   static_cast<size_t>(all.size() * 99 / 100))];
  rec.wall_seconds = wall;
  rec.throughput_qps = wall > 0.0 ? rec.total_queries / wall : 0.0;
  rec.plan_cache_hits = after.plan_cache_hits - before.plan_cache_hits;
  rec.plan_cache_misses =
      after.plan_cache_misses - before.plan_cache_misses;
  rec.admission_rejections =
      after.admission_rejections - before.admission_rejections;
  for (int64_t rows : rows_per_stream) rec.result_rows_total += rows;

  // The warm plan cache and the generous queue are part of the measured
  // configuration: a miss or a rejection means the serving layer is not
  // doing what this bench claims to measure.
  if (rec.plan_cache_hits != rec.total_queries ||
      rec.plan_cache_misses != 0) {
    std::fprintf(stderr,
                 "engine_serve (%d streams): expected %d warm cache hits, "
                 "got hits=%lld misses=%lld\n",
                 streams, rec.total_queries,
                 static_cast<long long>(rec.plan_cache_hits),
                 static_cast<long long>(rec.plan_cache_misses));
    std::exit(1);
  }
  if (rec.admission_rejections != 0) {
    std::fprintf(stderr, "engine_serve (%d streams): %lld unexpected "
                 "admission rejections\n",
                 streams,
                 static_cast<long long>(rec.admission_rejections));
    std::exit(1);
  }
  std::printf("  streams=%d  total=%3d  p50=%7.4fs  p99=%7.4fs  "
              "qps=%6.2f  wall=%6.3fs  hits=%lld\n",
              streams, rec.total_queries, rec.p50_latency_seconds,
              rec.p99_latency_seconds, rec.throughput_qps, rec.wall_seconds,
              static_cast<long long>(rec.plan_cache_hits));
  std::fflush(stdout);
  return rec;
}

int Main(int argc, char** argv) {
  const StatusOr<CommonFlags> flags =
      ParseCommonFlags(argc, argv, /*allow_threads=*/false);
  if (!flags.ok()) {
    std::fprintf(stderr,
                 "%s\nusage: %s [--trace-out=FILE] [--metrics-out=FILE] "
                 "[output.json]\n",
                 flags.status().ToString().c_str(), argv[0]);
    return 2;
  }
  ObsExporter obs(flags->trace_out, flags->metrics_out);
  const std::string out_path =
      flags->output_path.empty() ? "BENCH_serve.json" : flags->output_path;
  WarnIfSingleHardwareThread(kPoolThreads);

  EngineOptions options;
  options.executor.num_threads = kPoolThreads;
  options.per_query_threads = kPerQueryThreads;
  options.max_inflight_queries = kMaxInflight;
  // Deep enough that the largest round (8 streams) queues but never
  // rejects: rejection behaviour is pinned by tests/api_test.cc, not here.
  options.max_queue_depth = 256;
  ThetaEngine engine(options);

  std::vector<Shape> shapes = BuildShapes();

  // Sequential reference pass: executes each shape once in this thread,
  // recording the reference fingerprints the concurrent rounds must
  // reproduce — and warming the plan cache (exactly one miss per shape).
  std::printf("sequential reference (%zu shapes):\n", shapes.size());
  for (Shape& shape : shapes) {
    const auto start = std::chrono::steady_clock::now();
    const auto result = engine.Execute(shape.query);
    if (!result.ok()) {
      std::fprintf(stderr, "reference %s failed: %s\n", shape.name.c_str(),
                   result.status().ToString().c_str());
      return 1;
    }
    shape.fingerprint = OrderedRowsFingerprint(result->rows());
    shape.rows = result->num_rows();
    std::printf("  %-18s rows=%-8lld wall=%6.3fs\n", shape.name.c_str(),
                static_cast<long long>(shape.rows), SecondsSince(start));
  }
  const EngineMetrics warm = engine.metrics();
  if (warm.plan_cache_misses != static_cast<int64_t>(shapes.size())) {
    std::fprintf(stderr, "warmup: expected %zu plan-cache misses, got %lld\n",
                 shapes.size(),
                 static_cast<long long>(warm.plan_cache_misses));
    return 1;
  }

  std::vector<ServeBenchRecord> records;
  for (int streams : kStreamSteps) {
    records.push_back(RunRound(engine, shapes, streams));
  }

  const Status status = WriteServeBenchJson(out_path, records);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu records to %s\n", records.size(), out_path.c_str());
  if (const Status s = obs.Finish(&engine.metrics_registry()); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace mrtheta::bench

int main(int argc, char** argv) { return mrtheta::bench::Main(argc, argv); }
