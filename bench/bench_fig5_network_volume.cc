// Fig. 5: how the network volume (tuple replicas shipped to reducers)
// grows as a 3-relation cube is split into more Hilbert segments, plus
// Table 1 (the simulated cluster's Hadoop parameter set) and the
// column-pruning view of the same volume: replicas are tuples, the bytes
// behind them are the payload width, and early projection shrinks that
// width per relation (docs/EXECUTOR.md "Column pruning").

#include <cstdio>
#include <iostream>

#include "src/common/table_printer.h"
#include "src/core/column_pruning.h"
#include "src/hilbert/hilbert.h"
#include "src/mapreduce/cluster_config.h"
#include "src/workload/tpch.h"

using namespace mrtheta;  // NOLINT

int main() {
  // ---- Table 1 ----
  ClusterConfig cfg;
  std::printf("Table 1: simulated Hadoop parameter configuration\n\n");
  TablePrinter t1({"Parameter Name", "Set"});
  t1.AddRow({"fs.blocksize", FormatBytes(cfg.block_size)});
  t1.AddRow({"io.sort.mb", FormatBytes(cfg.io_sort_bytes)});
  t1.AddRow({"io.sort.spill.percentage",
             TablePrinter::Num(cfg.io_sort_spill_percent, 2)});
  t1.AddRow({"dfs.replication", TablePrinter::Int(cfg.replication)});
  t1.AddRow({"read rate (TestDFSIO)",
             TablePrinter::Num(cfg.disk_read_mb_per_sec, 2) + " MB/s"});
  t1.AddRow({"write rate (TestDFSIO)",
             TablePrinter::Num(cfg.disk_write_mb_per_sec, 2) + " MB/s"});
  t1.Print(std::cout);

  // ---- Fig. 5 ----
  std::printf("\nFig. 5: network volume vs reduce tasks (|Ri|=|Rj|=|Rk|=n)\n\n");
  const auto curve = HilbertCurve::Create(3, 3);
  if (!curve.ok()) return 1;
  const int64_t n = 1 << 12;
  TablePrinter table({"reduce tasks", "replicas shipped", "x cross (1 task)"});
  for (int k : {1, 2, 4, 8, 16, 32, 64}) {
    const auto coverage = SegmentCoverage::Build(*curve, k);
    if (!coverage.ok()) return 1;
    int64_t total = 0;
    for (int d = 0; d < 3; ++d) {
      total += coverage->ReplicasForUniformRelation(d, n);
    }
    table.AddRow({TablePrinter::Int(k), TablePrinter::Int(total),
                  TablePrinter::Num(static_cast<double>(total) / (3 * n),
                                    2)});
  }
  table.Print(std::cout);
  std::printf(
      "\nThe 1-task row ships each tuple once (|Ri|+|Rj|+|Rk|); volume\n"
      "grows ~k^(2/3) with the segment count, as Eq. (9) predicts.\n");

  // ---- Fig. 5b: the byte view under column pruning (TPC-H Q17) ----
  // Replicas count tuples; the shuffle pays replicas x payload width.
  // Early projection prunes each relation to the columns its pending
  // conditions and the projection touch, shrinking every row of Fig. 5
  // by the same per-relation factor.
  std::printf(
      "\nFig. 5b: shuffle payload width, full vs pruned (TPC-H Q17)\n\n");
  TpchOptions tpch_options;
  tpch_options.physical_lineitem_rows = 256;  // widths only — tiny sample
  const TpchData db = GenerateTpch(tpch_options);
  const auto q17 = BuildTpchQuery(17, db);
  if (!q17.ok()) return 1;
  const char* aliases[] = {"l1 (lineitem)", "p (part)", "l2 (lineitem)"};
  std::vector<int> all_thetas;
  for (const JoinCondition& c : q17->conditions()) all_thetas.push_back(c.id);
  TablePrinter t5b({"relation", "full row B", "pruned row B", "kept cols",
                    "reduction"});
  double full_total = 0.0;
  double pruned_total = 0.0;
  for (int r = 0; r < q17->num_relations(); ++r) {
    const Schema& schema = q17->relations()[r]->schema();
    const std::vector<int> cols =
        RequiredColumnsForBase(*q17, r, all_thetas);
    const int64_t full = schema.avg_row_bytes();
    const int64_t pruned = PrunedRowBytes(schema, cols);
    const double rows =
        static_cast<double>(q17->relations()[r]->logical_rows());
    full_total += rows * static_cast<double>(full);
    pruned_total += rows * static_cast<double>(pruned);
    t5b.AddRow({aliases[r], TablePrinter::Int(full),
                TablePrinter::Int(pruned),
                TablePrinter::Int(static_cast<int64_t>(cols.size())) + "/" +
                    TablePrinter::Int(schema.num_columns()),
                TablePrinter::Num(100.0 * (1.0 - static_cast<double>(pruned) /
                                                     static_cast<double>(full)),
                                  1) + "%"});
  }
  t5b.Print(std::cout);
  std::printf(
      "\nEvery Fig. 5 volume scales by the pruned/full byte ratio: %.1f%%\n"
      "of the full-width shuffle (row-weighted) survives pruning.\n",
      100.0 * pruned_total / full_total);
  return 0;
}
