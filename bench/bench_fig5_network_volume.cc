// Fig. 5: how the network volume (tuple replicas shipped to reducers)
// grows as a 3-relation cube is split into more Hilbert segments, plus
// Table 1 (the simulated cluster's Hadoop parameter set).

#include <cstdio>
#include <iostream>

#include "src/common/table_printer.h"
#include "src/hilbert/hilbert.h"
#include "src/mapreduce/cluster_config.h"

using namespace mrtheta;  // NOLINT

int main() {
  // ---- Table 1 ----
  ClusterConfig cfg;
  std::printf("Table 1: simulated Hadoop parameter configuration\n\n");
  TablePrinter t1({"Parameter Name", "Set"});
  t1.AddRow({"fs.blocksize", FormatBytes(cfg.block_size)});
  t1.AddRow({"io.sort.mb", FormatBytes(cfg.io_sort_bytes)});
  t1.AddRow({"io.sort.spill.percentage",
             TablePrinter::Num(cfg.io_sort_spill_percent, 2)});
  t1.AddRow({"dfs.replication", TablePrinter::Int(cfg.replication)});
  t1.AddRow({"read rate (TestDFSIO)",
             TablePrinter::Num(cfg.disk_read_mb_per_sec, 2) + " MB/s"});
  t1.AddRow({"write rate (TestDFSIO)",
             TablePrinter::Num(cfg.disk_write_mb_per_sec, 2) + " MB/s"});
  t1.Print(std::cout);

  // ---- Fig. 5 ----
  std::printf("\nFig. 5: network volume vs reduce tasks (|Ri|=|Rj|=|Rk|=n)\n\n");
  const auto curve = HilbertCurve::Create(3, 3);
  if (!curve.ok()) return 1;
  const int64_t n = 1 << 12;
  TablePrinter table({"reduce tasks", "replicas shipped", "x cross (1 task)"});
  for (int k : {1, 2, 4, 8, 16, 32, 64}) {
    const auto coverage = SegmentCoverage::Build(*curve, k);
    if (!coverage.ok()) return 1;
    int64_t total = 0;
    for (int d = 0; d < 3; ++d) {
      total += coverage->ReplicasForUniformRelation(d, n);
    }
    table.AddRow({TablePrinter::Int(k), TablePrinter::Int(total),
                  TablePrinter::Num(static_cast<double>(total) / (3 * n),
                                    2)});
  }
  table.Print(std::cout);
  std::printf(
      "\nThe 1-task row ships each tuple once (|Ri|+|Rj|+|Rk|); volume\n"
      "grows ~k^(2/3) with the segment count, as Eq. (9) predicts.\n");
  return 0;
}
