// Mobile-network analytics: the paper's four benchmark queries over the
// call-record data set, comparing our planner with the three baselines on
// one volume — a miniature of the Fig. 9 experiment. One ThetaEngine
// session plans and executes all four queries (and the baseline plans),
// amortizing calibration across them.

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "src/api/theta_engine.h"
#include "src/baselines/baseline_planners.h"
#include "src/common/table_printer.h"
#include "src/workload/mobile.h"

using namespace mrtheta;  // NOLINT: example brevity

int main() {
  ThetaEngine engine;

  TablePrinter table({"query", "ours (s)", "ysmart (s)", "hive (s)",
                      "pig (s)", "result rows", "plan"});
  for (int qid = 1; qid <= 4; ++qid) {
    MobileDataOptions options;
    options.physical_rows = qid <= 2 ? 900 : 350;
    options.logical_bytes = 20 * kGiB;
    const auto query = BuildMobileQuery(qid, options);
    if (!query.ok()) return 1;

    std::vector<double> seconds;
    int64_t rows = 0;
    std::string strategy;
    auto run = [&](StatusOr<QueryPlan> plan) {
      if (!plan.ok()) {
        std::printf("plan failed: %s\n", plan.status().ToString().c_str());
        std::exit(1);
      }
      const auto result = engine.ExecutePlan(*query, *plan);
      if (!result.ok()) {
        std::printf("execute failed: %s\n",
                    result.status().ToString().c_str());
        std::exit(1);
      }
      seconds.push_back(result->simulated_seconds());
      rows = result->num_rows();
      if (strategy.empty()) {
        strategy = plan->strategy + "/" +
                   std::to_string(plan->jobs.size()) + "job";
      }
    };
    run(engine.PlanQuery(*query));
    run(PlanYSmartStyle(*query, engine.cluster()));
    run(PlanHiveStyle(*query, engine.cluster()));
    run(PlanPigStyle(*query, engine.cluster()));

    table.AddRow({"Q" + std::to_string(qid),
                  TablePrinter::Num(seconds[0], 1),
                  TablePrinter::Num(seconds[1], 1),
                  TablePrinter::Num(seconds[2], 1),
                  TablePrinter::Num(seconds[3], 1),
                  TablePrinter::Int(rows), strategy});
  }
  std::printf("Mobile benchmark queries at 20 GB, kP <= 96\n\n");
  table.Print(std::cout);
  std::printf(
      "\nAll four systems compute identical results; the simulated times\n"
      "differ because of plan structure, reducer counts and SerDe costs.\n");
  return 0;
}
