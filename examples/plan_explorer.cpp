// Plan explorer: builds the paper's Fig. 1 join graph, prints the pruned
// join-path graph G'_JP (Algorithm 2) with weights and schedules, and the
// greedy set-cover selection of T — the planner's internals made visible.

#include <cstdio>
#include <memory>

#include "src/common/rng.h"
#include "src/core/planner.h"
#include "src/cost/calibration.h"
#include "src/sched/set_cover.h"

using namespace mrtheta;  // NOLINT: example brevity

namespace {

RelationPtr MakeRel(const char* name, int64_t logical_mb, uint64_t seed) {
  auto rel = std::make_shared<Relation>(
      name, Schema({{"a", ValueType::kInt64}, {"b", ValueType::kInt64}}));
  Rng rng(seed);
  for (int i = 0; i < 400; ++i) {
    rel->AppendIntRow({rng.UniformInt(0, 999), rng.UniformInt(0, 99)});
  }
  rel->set_logical_rows(logical_mb * kMiB / rel->schema().avg_row_bytes());
  return rel;
}

}  // namespace

int main() {
  SimCluster cluster{ClusterConfig{}};
  const auto calib = CalibrateCostModel(cluster);
  if (!calib.ok()) return 1;

  // Fig. 1's G_J over R0..R4 (0-indexed):
  //   θ0:(R0,R1) θ1:(R1,R2) θ2:(R0,R2) θ3:(R2,R3) θ4:(R3,R4) θ5:(R4,R2)
  Query q;
  std::vector<int> r;
  for (int i = 0; i < 5; ++i) {
    r.push_back(q.AddRelation(MakeRel("R", 512 * (i + 1), 7 + i)));
  }
  auto add = [&](int a, int b, ThetaOp op) {
    const auto id = q.AddCondition(r[a], "a", op, r[b], "a");
    if (!id.ok()) std::abort();
  };
  add(0, 1, ThetaOp::kLe);
  add(1, 2, ThetaOp::kEq);
  add(0, 2, ThetaOp::kGt);
  add(2, 3, ThetaOp::kEq);
  add(3, 4, ThetaOp::kLt);
  add(4, 2, ThetaOp::kGe);
  (void)q.AddOutput(r[0], "a");

  const auto graph = q.BuildJoinGraph();
  std::printf("G_J: %s\n", graph->ToString().c_str());
  std::printf("Eulerian circuit exists: %s (all degrees even, as in Fig. 1)\n\n",
              graph->HasEulerianCircuit() ? "yes" : "no");

  Planner planner(&cluster, calib->params);
  const auto plan = planner.Plan(q);
  if (!plan.ok()) {
    std::printf("plan: %s\n", plan.status().ToString().c_str());
    return 1;
  }

  std::printf("G'_JP after Lemma 1/2 pruning: %d trails enumerated, "
              "%d pruned by L1, %d by L2, %d candidates kept\n\n",
              plan->gjp_stats.trails_enumerated,
              plan->gjp_stats.pruned_by_lemma1,
              plan->gjp_stats.pruned_by_lemma2, plan->gjp_stats.reported);
  const size_t show = std::min<size_t>(12, plan->candidates.size());
  for (size_t i = 0; i < show; ++i) {
    std::printf("  e'%zu: %s\n", i, plan->candidates[i].ToString().c_str());
  }
  if (plan->candidates.size() > show) {
    std::printf("  ... (%zu more)\n", plan->candidates.size() - show);
  }
  std::printf("\nchosen plan:\n%s", plan->ToString().c_str());
  return 0;
}
