// Plan explorer: builds the paper's Fig. 1 join graph with the fluent
// QueryBuilder, prints the pruned join-path graph G'_JP (Algorithm 2) with
// weights and schedules, and the greedy set-cover selection of T — the
// planner's internals made visible through ThetaEngine::Explain.

#include <cstdio>
#include <memory>

#include "src/api/theta_engine.h"
#include "src/common/rng.h"

using namespace mrtheta;  // NOLINT: example brevity

namespace {

RelationPtr MakeRel(const char* name, int64_t logical_mb, uint64_t seed) {
  auto rel = std::make_shared<Relation>(
      name, Schema({{"a", ValueType::kInt64}, {"b", ValueType::kInt64}}));
  Rng rng(seed);
  for (int i = 0; i < 400; ++i) {
    rel->AppendIntRow({rng.UniformInt(0, 999), rng.UniformInt(0, 99)});
  }
  rel->set_logical_rows(logical_mb * kMiB / rel->schema().avg_row_bytes());
  return rel;
}

}  // namespace

int main() {
  ThetaEngine engine;

  // Fig. 1's G_J over r0..r4:
  //   θ0:(r0,r1) θ1:(r1,r2) θ2:(r0,r2) θ3:(r2,r3) θ4:(r3,r4) θ5:(r4,r2)
  QueryBuilder builder;
  for (int i = 0; i < 5; ++i) {
    builder.From("r" + std::to_string(i),
                 MakeRel("R", 512 * (i + 1), 7 + i));
  }
  builder.Where(Col("r0.a") <= Col("r1.a"))
      .Where(Col("r1.a") == Col("r2.a"))
      .Where(Col("r0.a") > Col("r2.a"))
      .Where(Col("r2.a") == Col("r3.a"))
      .Where(Col("r3.a") < Col("r4.a"))
      .Where(Col("r4.a") >= Col("r2.a"))
      .Select("r0.a");
  const auto query = builder.Build();
  if (!query.ok()) {
    std::printf("query: %s\n", query.status().ToString().c_str());
    return 1;
  }

  const auto graph = query->BuildJoinGraph();
  std::printf("G_J: %s\n", graph->ToString().c_str());
  std::printf("Eulerian circuit exists: %s (all degrees even, as in Fig. 1)\n\n",
              graph->HasEulerianCircuit() ? "yes" : "no");

  const auto report = engine.Explain(*query);
  if (!report.ok()) {
    std::printf("plan: %s\n", report.status().ToString().c_str());
    return 1;
  }
  const QueryPlan& plan = report->plan;

  std::printf("G'_JP after Lemma 1/2 pruning: %d trails enumerated, "
              "%d pruned by L1, %d by L2, %d candidates kept\n\n",
              plan.gjp_stats.trails_enumerated,
              plan.gjp_stats.pruned_by_lemma1,
              plan.gjp_stats.pruned_by_lemma2, plan.gjp_stats.reported);
  const size_t show = std::min<size_t>(12, plan.candidates.size());
  for (size_t i = 0; i < show; ++i) {
    std::printf("  e'%zu: %s\n", i, plan.candidates[i].ToString().c_str());
  }
  if (plan.candidates.size() > show) {
    std::printf("  ... (%zu more)\n", plan.candidates.size() - show);
  }
  std::printf("\nchosen plan:\n%s", plan.ToString().c_str());
  return 0;
}
