// TPC-H demo: generate the TPC-H-lite database, run the amended Q17
// (small-quantity parts, a lineitem self-join through part) through one
// ThetaEngine session and show the plan the optimizer picks plus its
// per-job simulated timeline.

#include <cstdio>

#include "src/api/theta_engine.h"
#include "src/common/flags.h"
#include "src/obs/obs_export.h"
#include "src/workload/tpch.h"

using namespace mrtheta;  // NOLINT: example brevity

// Usage: tpch_demo [--threads N] [--mem-budget SIZE] [--trace-out=F]
//        [--metrics-out=F]
int main(int argc, char** argv) {
  const StatusOr<CommonFlags> flags = ParseCommonFlags(argc, argv);
  if (!flags.ok()) {
    std::fprintf(stderr,
                 "%s\nusage: %s [--threads N] [--mem-budget SIZE] "
                 "[--trace-out=FILE] [--metrics-out=FILE]\n",
                 flags.status().ToString().c_str(), argv[0]);
    return 2;
  }
  WarnIfSingleHardwareThread(flags->num_threads);
  // Tracing must be installed before the engine runs anything; spans cover
  // planning, calibration and every runtime task (docs/OBSERVABILITY.md).
  ObsExporter obs(flags->trace_out, flags->metrics_out);

  EngineOptions engine_options;
  engine_options.executor.num_threads = flags->num_threads;
  engine_options.mem_budget_bytes = flags->mem_budget_bytes;
  ThetaEngine engine(engine_options);

  TpchOptions options;
  options.scale_factor = 100;  // represents ~100 GB
  options.physical_lineitem_rows = 4000;
  const TpchData db = GenerateTpch(options);
  std::printf("TPC-H-lite @ SF %.0f: lineitem %lld rows (logical %lld)\n\n",
              options.scale_factor,
              static_cast<long long>(db.lineitem->num_rows()),
              static_cast<long long>(db.lineitem->logical_rows()));

  const auto query = BuildTpchQuery(17, db);
  if (!query.ok()) return 1;
  std::printf("%s\n\n", query->ToString().c_str());

  const auto plan = engine.PlanQuery(*query);
  if (!plan.ok()) return 1;
  std::printf("%s\n", plan->ToString().c_str());

  const auto result = engine.ExecutePlan(*query, *plan);
  if (!result.ok()) {
    std::printf("execute: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("per-job timeline (simulated cluster + measured local):\n");
  for (const JobExecution& job : result->jobs()) {
    std::printf("  %-14s kind=%-12s RN=%-3d in=%9s shuffle=%9s "
                "[%.1fs .. %.1fs] local=%.3fs\n",
                job.name.c_str(), PlanJobKindName(job.kind),
                job.reduce_tasks,
                FormatBytes(job.metrics.input_bytes_logical).c_str(),
                FormatBytes(job.metrics.map_output_bytes_logical).c_str(),
                ToSeconds(job.timing.release),
                ToSeconds(job.timing.finish), job.wall_seconds);
  }
  std::printf("\nresult rows (physical sample): %lld, selectivity %.3g\n",
              static_cast<long long>(result->num_rows()),
              result->selectivity());
  std::printf("makespan: measured %.3fs on %d thread(s) / simulated %s "
              "on the modeled cluster\n",
              result->measured_seconds(), flags->num_threads,
              FormatSimTime(result->makespan()).c_str());

  std::printf("\nprofile (QueryResult::profile, same data as "
              "ExplainAnalyze):\n%s\n",
              result->profile().ToTable().c_str());

  if (const Status s = obs.Finish(&engine.metrics_registry()); !s.ok()) {
    std::fprintf(stderr, "observability export failed: %s\n",
                 s.ToString().c_str());
    return 1;
  }
  return 0;
}
