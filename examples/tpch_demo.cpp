// TPC-H demo: generate the TPC-H-lite database, run the amended Q17
// (small-quantity parts, a lineitem self-join through part) and show the
// plan the optimizer picks plus its per-job simulated timeline.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "src/core/executor.h"
#include "src/core/planner.h"
#include "src/cost/calibration.h"
#include "src/workload/tpch.h"

using namespace mrtheta;  // NOLINT: example brevity

// Usage: tpch_demo [--threads N]  (N = in-process runtime threads)
int main(int argc, char** argv) {
  int num_threads = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0) {
      num_threads = i + 1 < argc ? std::atoi(argv[i + 1]) : 0;
      if (num_threads < 1) {
        std::fprintf(stderr, "usage: %s [--threads N]  (N >= 1)\n", argv[0]);
        return 2;
      }
    }
  }
  if (num_threads > 1 && std::thread::hardware_concurrency() <= 1) {
    std::fprintf(stderr,
                 "warning: this host reports a single hardware thread; "
                 "--threads %d will time-slice one core and the measured "
                 "makespan will not improve\n",
                 num_threads);
  }

  SimCluster cluster{ClusterConfig{}};
  const auto calib = CalibrateCostModel(cluster);
  if (!calib.ok()) return 1;

  TpchOptions options;
  options.scale_factor = 100;  // represents ~100 GB
  options.physical_lineitem_rows = 4000;
  const TpchData db = GenerateTpch(options);
  std::printf("TPC-H-lite @ SF %.0f: lineitem %lld rows (logical %lld)\n\n",
              options.scale_factor,
              static_cast<long long>(db.lineitem->num_rows()),
              static_cast<long long>(db.lineitem->logical_rows()));

  const auto query = BuildTpchQuery(17, db);
  if (!query.ok()) return 1;
  std::printf("%s\n\n", query->ToString().c_str());

  Planner planner(&cluster, calib->params);
  const auto plan = planner.Plan(*query);
  if (!plan.ok()) return 1;
  std::printf("%s\n", plan->ToString().c_str());

  ExecutorOptions exec_options;
  exec_options.num_threads = num_threads;
  Executor executor(&cluster, exec_options);
  const auto result = executor.Execute(*query, *plan);
  if (!result.ok()) {
    std::printf("execute: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("per-job timeline (simulated cluster + measured local):\n");
  for (const JobExecution& job : result->jobs) {
    std::printf("  %-14s kind=%-12s RN=%-3d in=%9s shuffle=%9s "
                "[%.1fs .. %.1fs] local=%.3fs\n",
                job.name.c_str(), PlanJobKindName(job.kind),
                job.reduce_tasks,
                FormatBytes(job.metrics.input_bytes_logical).c_str(),
                FormatBytes(job.metrics.map_output_bytes_logical).c_str(),
                ToSeconds(job.timing.release),
                ToSeconds(job.timing.finish), job.wall_seconds);
  }
  std::printf("\nresult rows (physical sample): %lld, selectivity %.3g\n",
              static_cast<long long>(result->result_ids->num_rows()),
              result->result_selectivity);
  std::printf("makespan: measured %.3fs on %d thread(s) / simulated %s "
              "on the modeled cluster\n",
              result->measured_seconds, num_threads,
              FormatSimTime(result->makespan).c_str());
  return 0;
}
