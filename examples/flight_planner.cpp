// The paper's motivating scenario (Sec. 2.2): find all travel plans along
// a city sequence where each stay-over falls inside a time window — a
// chain theta-join with band predicates, evaluated in ONE MapReduce job.

#include <cstdio>

#include "src/core/executor.h"
#include "src/core/planner.h"
#include "src/cost/calibration.h"
#include "src/workload/flights.h"

using namespace mrtheta;  // NOLINT: example brevity

int main() {
  SimCluster cluster{ClusterConfig{}};
  const auto calib = CalibrateCostModel(cluster);
  if (!calib.ok()) return 1;

  // Itinerary over four cities = three flight-leg tables, each
  // representing ~4 GB of flight records.
  FlightLegOptions leg_options;
  leg_options.physical_rows = 800;
  leg_options.logical_rows = 4LL * kGiB / 28;
  std::vector<RelationPtr> legs = {GenerateFlightLeg(0, leg_options),
                                   GenerateFlightLeg(1, leg_options),
                                   GenerateFlightLeg(2, leg_options)};
  // Stay-overs: 1-4 h at city 1, 2-6 h at city 2.
  const std::vector<StayOver> stays = {StayOver{60, 240},
                                       StayOver{120, 360}};
  const auto query = BuildItineraryQuery(legs, stays);
  if (!query.ok()) {
    std::printf("query: %s\n", query.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n\n", query->ToString().c_str());

  Planner planner(&cluster, calib->params);
  const auto plan = planner.Plan(*query);
  if (!plan.ok()) return 1;
  std::printf("%s\n", plan->ToString().c_str());

  Executor executor(&cluster);
  const auto result = executor.Execute(*query, *plan);
  if (!result.ok()) {
    std::printf("execute: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("valid travel plans (physical sample): %lld\n",
              static_cast<long long>(result->result_ids->num_rows()));
  std::printf("simulated makespan: %s\n",
              FormatSimTime(result->makespan).c_str());
  // Show a few itineraries: flight numbers per leg.
  const int64_t show = std::min<int64_t>(5, result->projected->num_rows());
  for (int64_t r = 0; r < show; ++r) {
    std::printf("  plan %lld:", static_cast<long long>(r));
    for (int c = 0; c < result->projected->schema().num_columns(); ++c) {
      std::printf(" %s", result->projected->Get(r, c).ToString().c_str());
    }
    std::printf("\n");
  }
  return 0;
}
