// The paper's motivating scenario (Sec. 2.2): find all travel plans along
// a city sequence where each stay-over falls inside a time window — a
// chain theta-join with band predicates, evaluated in ONE MapReduce job
// through the ThetaEngine session API.

#include <cstdio>

#include "src/api/theta_engine.h"
#include "src/workload/flights.h"

using namespace mrtheta;  // NOLINT: example brevity

int main() {
  ThetaEngine engine;

  // Itinerary over four cities = three flight-leg tables, each
  // representing ~4 GB of flight records.
  FlightLegOptions leg_options;
  leg_options.physical_rows = 800;
  leg_options.logical_rows = 4LL * kGiB / 28;
  std::vector<RelationPtr> legs = {GenerateFlightLeg(0, leg_options),
                                   GenerateFlightLeg(1, leg_options),
                                   GenerateFlightLeg(2, leg_options)};
  // Stay-overs: 1-4 h at city 1, 2-6 h at city 2.
  const std::vector<StayOver> stays = {StayOver{60, 240},
                                       StayOver{120, 360}};
  const auto query = BuildItineraryQuery(legs, stays);
  if (!query.ok()) {
    std::printf("query: %s\n", query.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n\n", query->ToString().c_str());

  const auto plan = engine.PlanQuery(*query);
  if (!plan.ok()) return 1;
  std::printf("%s\n", plan->ToString().c_str());

  const auto result = engine.ExecutePlan(*query, *plan);
  if (!result.ok()) {
    std::printf("execute: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("valid travel plans (physical sample): %lld\n",
              static_cast<long long>(result->num_rows()));
  std::printf("simulated makespan: %s\n",
              FormatSimTime(result->makespan()).c_str());
  // Show a few itineraries: flight numbers per leg.
  const int64_t show = std::min<int64_t>(5, result->rows().num_rows());
  for (int64_t r = 0; r < show; ++r) {
    std::printf("  plan %lld:", static_cast<long long>(r));
    for (int c = 0; c < result->num_columns(); ++c) {
      std::printf(" %s", result->Get(r, c).ToString().c_str());
    }
    std::printf("\n");
  }
  return 0;
}
