// Quickstart: plan and execute a multi-way theta-join with the session
// API. One ThetaEngine owns the simulated cluster, the cost-model
// calibration, per-relation statistics and the runtime thread pool; the
// fluent QueryBuilder expresses the paper's Q1 ("concurrent calls at the
// same base station") without index juggling.

#include <cstdio>

#include "src/api/theta_engine.h"
#include "src/baselines/baseline_planners.h"
#include "src/common/flags.h"
#include "src/obs/obs_export.h"
#include "src/workload/mobile.h"

using namespace mrtheta;  // NOLINT: example brevity

// Usage: quickstart [--threads N] [--mem-budget SIZE] [--trace-out=F]
//        [--metrics-out=F]
int main(int argc, char** argv) {
  const StatusOr<CommonFlags> flags = ParseCommonFlags(argc, argv);
  if (!flags.ok()) {
    std::fprintf(stderr,
                 "%s\nusage: %s [--threads N] [--mem-budget SIZE] "
                 "[--trace-out=FILE] [--metrics-out=FILE]\n",
                 flags.status().ToString().c_str(), argv[0]);
    return 2;
  }
  ObsExporter obs(flags->trace_out, flags->metrics_out);

  // 1. One engine per session: a simulated 96-unit cluster (Table 1
  // parameters); calibration (Sec. 6.2) runs lazily on the first query.
  // --mem-budget SIZE bounds shuffle memory: beyond it the runtime spills
  // to disk and merges back, with byte-identical results (docs/MEMORY.md).
  EngineOptions options;
  options.executor.num_threads = flags->num_threads;
  options.mem_budget_bytes = flags->mem_budget_bytes;
  ThetaEngine engine(options);
  std::printf("cluster: %s\n", engine.cluster().config().ToString().c_str());

  // 2. Data: mobile-call samples, each alias representing 2 GB of records.
  MobileDataOptions data_options;
  data_options.physical_rows = 1500;
  data_options.logical_bytes = 2 * kGiB;

  // 3. Query Q1, fluently: concurrent calls at the same base station.
  QueryBuilder builder;
  builder.From("t1", GenerateMobileCallsInstance(data_options, 0))
      .From("t2", GenerateMobileCallsInstance(data_options, 1))
      .From("t3", GenerateMobileCallsInstance(data_options, 2))
      .Where(Col("t1.bt") <= Col("t2.bt"))
      .Where(Col("t1.l") >= Col("t2.l"))
      .Where(Col("t2.bsc") == Col("t3.bsc"))
      .Where(Col("t2.d") == Col("t3.d"))
      .Select("t3.id");
  const StatusOr<Query> query = builder.Build();
  if (!query.ok()) {
    std::printf("query: %s\n", query.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", query->ToString().c_str());

  // 4. Explain: statistics -> join-path graph -> set cover -> malleable
  // schedule, all behind one call.
  const StatusOr<PlanReport> report = engine.Explain(*query);
  if (!report.ok()) {
    std::printf("planning failed: %s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", report->plan.ToString().c_str());

  // 5. Execute on the in-process runtime: exact answers + simulated
  // makespan; measured wall-clock shrinks with --threads, the simulated
  // figures do not change.
  const StatusOr<QueryResult> result = engine.ExecutePlan(*query,
                                                          report->plan);
  if (!result.ok()) {
    std::printf("execution failed: %s\n",
                result.status().ToString().c_str());
    return 1;
  }
  std::printf("result rows (physical): %lld, selectivity: %.6g\n",
              static_cast<long long>(result->num_rows()),
              result->selectivity());
  std::printf("makespan: measured %.3fs on %d thread(s) / simulated %s "
              "on the modeled cluster\n",
              result->measured_seconds(), flags->num_threads,
              FormatSimTime(result->makespan()).c_str());

  // 5b. The same execution as a profile tree (ExplainAnalyze runs a fresh
  // execution; here we reuse the one above via QueryResult::profile()).
  std::printf("\nprofile:\n%s\n", result->profile().ToTable().c_str());

  // 6. Compare against the Hive-style baseline on the same session.
  const StatusOr<QueryPlan> hive = PlanHiveStyle(*query, engine.cluster());
  if (hive.ok()) {
    const StatusOr<QueryResult> hive_result =
        engine.ExecutePlan(*query, *hive);
    if (hive_result.ok()) {
      std::printf("hive-style makespan: %s (%.2fx ours)\n",
                  FormatSimTime(hive_result->makespan()).c_str(),
                  static_cast<double>(hive_result->makespan()) /
                      static_cast<double>(result->makespan()));
    } else {
      std::printf("hive-style execution failed: %s\n",
                  hive_result.status().ToString().c_str());
    }
  }

  if (const Status s = obs.Finish(&engine.metrics_registry()); !s.ok()) {
    std::fprintf(stderr, "observability export failed: %s\n",
                 s.ToString().c_str());
    return 1;
  }
  return 0;
}
