// Quickstart: plan and execute a 3-way theta-join on the simulated cluster.
//
// Builds two tiny relations, joins them with inequality conditions through
// the full pipeline (statistics -> cost calibration -> join-path graph ->
// set cover -> malleable schedule -> Hilbert-partitioned MapReduce jobs),
// and prints the result plus the simulated execution report.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "src/baselines/baseline_planners.h"
#include "src/common/rng.h"
#include "src/core/executor.h"
#include "src/core/planner.h"
#include "src/cost/calibration.h"
#include "src/workload/mobile.h"

using namespace mrtheta;  // NOLINT: example brevity

// Usage: quickstart [--threads N]  (N = in-process runtime threads)
int main(int argc, char** argv) {
  int num_threads = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0) {
      num_threads = i + 1 < argc ? std::atoi(argv[i + 1]) : 0;
      if (num_threads < 1) {
        std::fprintf(stderr, "usage: %s [--threads N]  (N >= 1)\n", argv[0]);
        return 2;
      }
    }
  }

  // 1. A simulated 96-unit cluster (Table 1 parameters).
  SimCluster cluster(ClusterConfig{});
  std::printf("cluster: %s\n", cluster.config().ToString().c_str());

  // 2. Calibrate the cost model from observed sample jobs (Sec. 6.2).
  StatusOr<CalibrationReport> calib = CalibrateCostModel(cluster);
  if (!calib.ok()) {
    std::printf("calibration failed: %s\n",
                calib.status().ToString().c_str());
    return 1;
  }

  // 3. Data: mobile-call samples, each alias representing 2 GB of records.
  MobileDataOptions data_options;
  data_options.physical_rows = 1500;
  data_options.logical_bytes = 2 * kGiB;

  // 4. Query Q1: concurrent calls at the same base station.
  StatusOr<Query> query = BuildMobileQuery(1, data_options);
  if (!query.ok()) return 1;
  std::printf("%s\n", query->ToString().c_str());

  // 5. Plan: decompose into MRJs, pick T_opt, schedule on kP units.
  Planner planner(&cluster, calib->params);
  StatusOr<QueryPlan> plan = planner.Plan(*query);
  if (!plan.ok()) {
    std::printf("planning failed: %s\n", plan.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", plan->ToString().c_str());

  // 6. Execute on the in-process runtime: exact answers + simulated
  // makespan; measured wall-clock shrinks with --threads, the simulated
  // figures do not change.
  ExecutorOptions exec_options;
  exec_options.num_threads = num_threads;
  Executor executor(&cluster, exec_options);
  StatusOr<ExecutionResult> result = executor.Execute(*query, *plan);
  if (!result.ok()) {
    std::printf("execution failed: %s\n",
                result.status().ToString().c_str());
    return 1;
  }
  std::printf("result rows (physical): %lld, selectivity: %.6g\n",
              static_cast<long long>(result->result_ids->num_rows()),
              result->result_selectivity);
  std::printf("makespan: measured %.3fs on %d thread(s) / simulated %s "
              "on the modeled cluster\n",
              result->measured_seconds, num_threads,
              FormatSimTime(result->makespan).c_str());

  // 7. Compare against the Hive-style baseline on the same cluster.
  StatusOr<QueryPlan> hive = PlanHiveStyle(*query, cluster);
  if (hive.ok()) {
    StatusOr<ExecutionResult> hive_result =
        executor.Execute(*query, *hive);
    if (hive_result.ok()) {
      std::printf("hive-style makespan: %s (%.2fx ours)\n",
                  FormatSimTime(hive_result->makespan).c_str(),
                  static_cast<double>(hive_result->makespan) /
                      static_cast<double>(result->makespan));
    } else {
      std::printf("hive-style execution failed: %s\n",
                  hive_result.status().ToString().c_str());
    }
  }
  return 0;
}
